#ifndef BBV_COMMON_RESULT_H_
#define BBV_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace bbv::common {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Accessing the value of an errored result aborts, so
/// callers must test `ok()` (or use BBV_ASSIGN_OR_RETURN) first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    BBV_CHECK(!status_.ok()) << "Result constructed from an OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    BBV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    BBV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    BBV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or aborts with a readable message. Convenience for
  /// examples and benchmarks where an error is unrecoverable anyway.
  T ValueOrDie() && { return std::move(*this).value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagates its error, or assigns the value.
#define BBV_ASSIGN_OR_RETURN(lhs, expr)                   \
  BBV_ASSIGN_OR_RETURN_IMPL_(                             \
      BBV_STATUS_MACRO_CONCAT_(_bbv_result, __COUNTER__), lhs, expr)

// BBV_STATUS_MACRO_CONCAT_ comes from common/status.h.
#define BBV_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace bbv::common

#endif  // BBV_COMMON_RESULT_H_
