#ifndef BBV_COMMON_RNG_H_
#define BBV_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace bbv::common {

/// Deterministic pseudo-random number generator (xoshiro256**) with the
/// sampling helpers the library needs. All randomness in experiments flows
/// through explicitly seeded Rng instances, so every figure reproduction is
/// bit-for-bit repeatable.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds yield uncorrelated
  /// streams.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [low, high).
  double Uniform(double low, double high);

  /// Uniform integer in [0, n). Requires n > 0.
  size_t UniformInt(size_t n);

  /// Uniform integer in [low, high]. Requires low <= high.
  int64_t UniformInt(int64_t low, int64_t high);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    BBV_CHECK(!items.empty()) << "Choice from empty vector";
    return items[UniformInt(items.size())];
  }

  /// Fisher-Yates shuffle in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// A random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Child generator with an independent stream; use to give each worker or
  /// repetition its own reproducible randomness.
  Rng Fork();

  /// `n` children forked in order. This is the handshake with the parallel
  /// subsystem: fork one stream per task *before* dispatch, and results are
  /// bit-identical at every thread count.
  std::vector<Rng> ForkStreams(size_t n);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace bbv::common

#endif  // BBV_COMMON_RNG_H_
