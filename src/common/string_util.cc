#include "common/string_util.h"

#include <cctype>
#include <cstdint>

namespace bbv::common {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string result;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(text.substr(start));
      break;
    }
    result.append(text.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
  return result;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

uint64_t Fnv1aHash(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace bbv::common
