#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

#include "common/check.h"
#include "common/telemetry.h"

namespace bbv::common {

namespace {

thread_local bool tls_on_worker_thread = false;

/// Marks the current thread as executing pool work for the lifetime of the
/// scope, so nested parallel sections degrade to serial loops instead of
/// deadlocking on the shared pool.
class ScopedWorkerMark {
 public:
  ScopedWorkerMark() : previous_(tls_on_worker_thread) {
    tls_on_worker_thread = true;
  }
  ~ScopedWorkerMark() { tls_on_worker_thread = previous_; }
  ScopedWorkerMark(const ScopedWorkerMark&) = delete;
  ScopedWorkerMark& operator=(const ScopedWorkerMark&) = delete;

 private:
  bool previous_;
};

}  // namespace

int ConfiguredThreadCount() {
  if (const char* env = std::getenv("BBV_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      constexpr long kMaxThreads = 256;  // sanity cap for typo'd overrides
      return static_cast<int>(std::min(parsed, kMaxThreads));
    }
  }
  return HardwareThreadCount();
}

int HardwareThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  // Workers are moved out under the lock and joined outside it: joining
  // while holding mutex_ would deadlock with WorkerLoop's final drain, and
  // touching workers_ unlocked would break its BBV_GUARDED_BY contract.
  std::vector<std::thread> workers;
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
    workers.swap(workers_);
  }
  wake_.notify_all();
  for (std::thread& worker : workers) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    BBV_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::EnsureWorkers(int count) {
  const MutexLock lock(mutex_);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_workers() const {
  const MutexLock lock(mutex_);
  return static_cast<int>(workers_.size());
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  const ScopedWorkerMark mark;
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      // Manual wait loop instead of the predicate overload: the predicate
      // lambda would be analyzed as its own function, where -Wthread-safety
      // cannot see that the wait holds mutex_.
      while (!stopping_ && tasks_.empty()) wake_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& SharedThreadPool() {
  // Function-local static: workers are joined during normal static
  // destruction, keeping leak and thread sanitizers quiet.
  static ThreadPool pool(0);
  return pool;
}

Status ParallelFor(size_t n, const std::function<Status(size_t)>& body,
                   const ParallelOptions& options) {
  if (n == 0) return Status::OK();
  int threads =
      options.threads > 0 ? options.threads : ConfiguredThreadCount();
  const size_t min_items = std::max<size_t>(1, options.min_items_per_thread);
  const size_t useful_threads = (n + min_items - 1) / min_items;
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), useful_threads));
  // Observation-only section accounting: task counts per section and (below)
  // the chunk-claim imbalance between workers. Telemetry never feeds back
  // into scheduling, so results stay bit-identical with it on or off.
  telemetry::IncrementCounter("parallel.sections");
  telemetry::IncrementCounter("parallel.items", n);
  telemetry::RecordValue("parallel.section.items",
                         static_cast<double>(n));
  if (threads <= 1 || n == 1 || ThreadPool::OnWorkerThread()) {
    telemetry::IncrementCounter("parallel.sections_serial");
    // The serial reference honors the same contract as the threaded path:
    // every index runs even after a failure, the lowest failing index wins,
    // and the lowest-index exception propagates after the loop finishes.
    Status first_error;
    std::exception_ptr first_exception;
    for (size_t i = 0; i < n; ++i) {
      try {
        const Status status = body(i);
        if (!status.ok() && first_error.ok()) first_error = status;
      } catch (...) {
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
      }
    }
    if (first_exception != nullptr) std::rethrow_exception(first_exception);
    return first_error;
  }

  telemetry::IncrementCounter("parallel.sections_threaded");
  telemetry::SetGauge("parallel.last_section_threads",
                      static_cast<double>(threads));
  const telemetry::TraceSpan section_span("parallel.section");

  // Fixed chunk grid, dynamically claimed: which worker runs a chunk never
  // affects results (each index owns its output slot), only load balance.
  const size_t chunks =
      std::min(n, static_cast<size_t>(threads) * 4);
  constexpr size_t kNoIndex = std::numeric_limits<size_t>::max();
  struct SectionState {
    std::atomic<size_t> next_chunk{0};
    Mutex mutex;
    std::condition_variable_any all_done;
    int pending_helpers BBV_GUARDED_BY(mutex) = 0;
    size_t error_index BBV_GUARDED_BY(mutex) = 0;
    Status error BBV_GUARDED_BY(mutex);
    size_t exception_index BBV_GUARDED_BY(mutex) = 0;
    std::exception_ptr exception BBV_GUARDED_BY(mutex);
  } state;
  {
    const MutexLock lock(state.mutex);
    state.error_index = kNoIndex;
    state.exception_index = kNoIndex;
  }

  // One slot per participant (helpers first, caller last) counting the
  // chunks it claimed; left empty when telemetry is off so the disabled
  // path allocates nothing.
  std::vector<uint64_t> claimed_chunks;
  if (telemetry::Enabled()) claimed_chunks.assign(static_cast<size_t>(threads), 0);

  const auto run_chunks = [&state, &body, n, chunks](uint64_t* claimed) {
    for (;;) {
      const size_t chunk =
          state.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) return;
      if (claimed != nullptr) ++*claimed;
      const size_t begin = chunk * n / chunks;
      const size_t end = (chunk + 1) * n / chunks;
      for (size_t i = begin; i < end; ++i) {
        try {
          const Status status = body(i);
          if (!status.ok()) {
            const MutexLock lock(state.mutex);
            if (i < state.error_index) {
              state.error_index = i;
              state.error = status;
            }
          }
        } catch (...) {
          const MutexLock lock(state.mutex);
          if (i < state.exception_index) {
            state.exception_index = i;
            state.exception = std::current_exception();
          }
        }
      }
    }
  };

  ThreadPool& pool = SharedThreadPool();
  const int helpers = threads - 1;
  pool.EnsureWorkers(helpers);
  {
    const MutexLock lock(state.mutex);
    state.pending_helpers = helpers;
  }
  for (int h = 0; h < helpers; ++h) {
    uint64_t* claimed =
        claimed_chunks.empty() ? nullptr
                               : &claimed_chunks[static_cast<size_t>(h)];
    pool.Submit([&state, &run_chunks, claimed] {
      run_chunks(claimed);
      const MutexLock lock(state.mutex);
      if (--state.pending_helpers == 0) state.all_done.notify_one();
    });
  }
  {
    // The caller works too, and counts as "inside the pool" so nested
    // sections in `body` stay serial.
    const ScopedWorkerMark mark;
    run_chunks(claimed_chunks.empty() ? nullptr : &claimed_chunks.back());
  }
  // Manual wait loop (not the predicate overload) so -Wthread-safety sees
  // the guarded reads under the lock; the outcome is copied out while still
  // holding it, because after this block state is read lock-free.
  size_t error_index = kNoIndex;
  Status error;
  size_t exception_index = kNoIndex;
  std::exception_ptr exception;
  {
    const MutexLock lock(state.mutex);
    while (state.pending_helpers != 0) state.all_done.wait(state.mutex);
    error_index = state.error_index;
    error = state.error;
    exception_index = state.exception_index;
    exception = state.exception;
  }
  if (!claimed_chunks.empty()) {
    // Helper slots were written before each helper's final pending_helpers
    // decrement, so the all_done wait above orders them before this read.
    const auto [min_claimed, max_claimed] = std::minmax_element(
        claimed_chunks.begin(), claimed_chunks.end());
    telemetry::RecordValue(
        "parallel.section.chunk_imbalance",
        static_cast<double>(*max_claimed - *min_claimed));
  }
  if (exception_index != kNoIndex) {
    std::rethrow_exception(exception);
  }
  if (error_index != kNoIndex) return error;
  return Status::OK();
}

}  // namespace bbv::common
