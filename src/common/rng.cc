#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace bbv::common {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotateLeft(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double low, double high) {
  BBV_CHECK_LE(low, high);
  return low + (high - low) * Uniform();
}

size_t Rng::UniformInt(size_t n) {
  BBV_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t value = NextUint64();
  while (value >= limit) {
    value = NextUint64();
  }
  return static_cast<size_t>(value % n);
}

int64_t Rng::UniformInt(int64_t low, int64_t high) {
  BBV_CHECK_LE(low, high);
  const auto range = static_cast<uint64_t>(high - low) + 1;
  // range == 0 means the full int64 span; fall back to raw output.
  if (range == 0) return static_cast<int64_t>(NextUint64());
  return low + static_cast<int64_t>(UniformInt(static_cast<size_t>(range)));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; guards against log(0).
  double u1 = Uniform();
  while (u1 <= 0.0) {
    u1 = Uniform();
  }
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  BBV_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + UniformInt(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> result(n);
  for (size_t i = 0; i < n; ++i) result[i] = i;
  Shuffle(result);
  return result;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<Rng> Rng::ForkStreams(size_t n) {
  std::vector<Rng> streams;
  streams.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    streams.push_back(Fork());
  }
  return streams;
}

}  // namespace bbv::common
