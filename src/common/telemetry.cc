#include "common/telemetry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <functional>
#include <sstream>
#include <utility>

namespace bbv::common::telemetry {

namespace {

bool ReadEnabledFromEnv() {
  const char* env = std::getenv("BBV_TELEMETRY");
  if (env == nullptr) return true;
  std::string value(env);
  std::transform(value.begin(), value.end(), value.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return value != "off" && value != "0" && value != "false";
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{ReadEnabledFromEnv()};
  return enabled;
}

/// Lowers `target` to `value` if smaller (relaxed CAS loop; NaN never enters
/// because Record() sanitizes inputs).
void AtomicMin(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value < observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t Histogram::BucketIndex(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  // ilogb(2^-32) = -32 maps to bucket 0; each octave above gets its own
  // bucket up to 2^31 and beyond in bucket kNumBuckets - 1.
  const int exponent = std::ilogb(value);
  const long bucket = static_cast<long>(exponent) + 32;
  return static_cast<size_t>(
      std::clamp<long>(bucket, 0, static_cast<long>(kNumBuckets) - 1));
}

double Histogram::BucketMidpoint(size_t bucket) {
  // Geometric midpoint of [2^(bucket-32), 2^(bucket-31)).
  const double low = std::ldexp(1.0, static_cast<int>(bucket) - 32);
  return low * 1.4142135623730951;  // low * sqrt(2)
}

void Histogram::Record(double value) {
  if (!std::isfinite(value)) return;  // never let NaN/Inf poison min/max
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::ApproxPercentile(double q) const {
  const uint64_t total_count = count();
  if (total_count == 0) return 0.0;
  const double clamped_q = std::clamp(q, 0.0, 100.0);
  // Rank of the target observation, 1-based.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(clamped_q / 100.0 * static_cast<double>(total_count))));
  uint64_t cumulative = 0;
  for (size_t bucket = 0; bucket < kNumBuckets; ++bucket) {
    cumulative += buckets_[bucket].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return std::clamp(BucketMidpoint(bucket), min(), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Global() {
  // Never torn down before instrument references: function-local static
  // outlives all user code running during normal static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Shard& Registry::ShardFor(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kNumShards];
}

const Registry::Shard& Registry::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kNumShards];
}

Counter& Registry::counter(std::string_view name) {
  Shard& shard = ShardFor(name);
  const MutexLock lock(shard.mutex);
  const auto it = shard.counters.find(name);
  if (it != shard.counters.end()) return *it->second;
  return *shard.counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Shard& shard = ShardFor(name);
  const MutexLock lock(shard.mutex);
  const auto it = shard.gauges.find(name);
  if (it != shard.gauges.end()) return *it->second;
  return *shard.gauges.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Shard& shard = ShardFor(name);
  const MutexLock lock(shard.mutex);
  const auto it = shard.histograms.find(name);
  if (it != shard.histograms.end()) return *it->second;
  return *shard.histograms
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    for (const auto& [name, counter] : shard.counters) {
      snapshot.counters.push_back({name, counter->value()});
    }
    for (const auto& [name, gauge] : shard.gauges) {
      snapshot.gauges.push_back({name, gauge->value()});
    }
    for (const auto& [name, histogram] : shard.histograms) {
      HistogramSnapshot entry;
      entry.name = name;
      entry.count = histogram->count();
      entry.total = histogram->total();
      entry.min = histogram->min();
      entry.max = histogram->max();
      entry.p50 = histogram->ApproxPercentile(50.0);
      entry.p95 = histogram->ApproxPercentile(95.0);
      entry.p99 = histogram->ApproxPercentile(99.0);
      entry.p999 = histogram->ApproxPercentile(99.9);
      snapshot.histograms.push_back(std::move(entry));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

std::string Registry::SummaryString() const {
  const Snapshot snapshot = TakeSnapshot();
  std::ostringstream os;
  os << "telemetry (" << (Enabled() ? "enabled" : "disabled") << "): "
     << snapshot.counters.size() << " counters, " << snapshot.gauges.size()
     << " gauges, " << snapshot.histograms.size() << " spans\n";
  for (const CounterSnapshot& counter : snapshot.counters) {
    os << "counter " << counter.name << " = " << counter.value << "\n";
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    os << "gauge " << gauge.name << " = " << gauge.value << "\n";
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    os << "span " << histogram.name << ": count=" << histogram.count
       << " total=" << histogram.total << " min=" << histogram.min
       << " p50=" << histogram.p50 << " p95=" << histogram.p95
       << " max=" << histogram.max << "\n";
  }
  return os.str();
}

std::string Registry::ToJson() const {
  const Snapshot snapshot = TakeSnapshot();
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "  \"telemetry\": {\n";
  os << "    \"enabled\": " << (Enabled() ? "true" : "false") << ",\n";
  os << "    \"counters\": [\n";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSnapshot& counter = snapshot.counters[i];
    os << "      {\"name\": \"" << counter.name
       << "\", \"value\": " << counter.value << "}"
       << (i + 1 < snapshot.counters.size() ? "," : "") << "\n";
  }
  os << "    ],\n";
  os << "    \"gauges\": [\n";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSnapshot& gauge = snapshot.gauges[i];
    os << "      {\"name\": \"" << gauge.name << "\", \"value\": " << gauge.value
       << "}" << (i + 1 < snapshot.gauges.size() ? "," : "") << "\n";
  }
  os << "    ],\n";
  os << "    \"histograms\": [\n";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& histogram = snapshot.histograms[i];
    os << "      {\"name\": \"" << histogram.name
       << "\", \"count\": " << histogram.count
       << ", \"total\": " << histogram.total << ", \"min\": " << histogram.min
       << ", \"max\": " << histogram.max << ", \"p50\": " << histogram.p50
       << ", \"p95\": " << histogram.p95 << ", \"p99\": " << histogram.p99
       << ", \"p999\": " << histogram.p999 << "}"
       << (i + 1 < snapshot.histograms.size() ? "," : "") << "\n";
  }
  os << "    ]\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

void Registry::ResetForTesting() {
  for (Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    for (const auto& [name, counter] : shard.counters) counter->Reset();
    for (const auto& [name, gauge] : shard.gauges) gauge->Reset();
    for (const auto& [name, histogram] : shard.histograms) histogram->Reset();
  }
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

void IncrementCounter(std::string_view name, uint64_t delta) {
  if (!Enabled()) return;
  Registry::Global().counter(name).Increment(delta);
}

void SetGauge(std::string_view name, double value) {
  if (!Enabled()) return;
  Registry::Global().gauge(name).Set(value);
}

void RecordValue(std::string_view name, double value) {
  if (!Enabled()) return;
  Registry::Global().histogram(name).Record(value);
}

uint64_t ReadCounter(std::string_view name) {
  if (!Enabled()) return 0;
  return Registry::Global().counter(name).value();
}

}  // namespace bbv::common::telemetry
