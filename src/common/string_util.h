#ifndef BBV_COMMON_STRING_UTIL_H_
#define BBV_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bbv::common {

/// Splits `text` on `delimiter`, keeping empty tokens ("a,,b" -> 3 tokens).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on runs of whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Strips leading and trailing ASCII whitespace.
std::string Strip(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// FNV-1a 64-bit hash, used by the hashing vectorizer and one-hot bucketing.
uint64_t Fnv1aHash(std::string_view text);

}  // namespace bbv::common

#endif  // BBV_COMMON_STRING_UTIL_H_
