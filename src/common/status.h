#ifndef BBV_COMMON_STATUS_H_
#define BBV_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace bbv::common {

/// Machine-readable error category, modeled after the Arrow/RocksDB status
/// idiom. The library does not throw exceptions across its public API;
/// fallible operations return a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNotImplemented,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or an error code plus message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

#define BBV_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define BBV_STATUS_MACRO_CONCAT_(x, y) BBV_STATUS_MACRO_CONCAT_INNER_(x, y)

/// Propagates a non-OK status to the caller. The temporary's name is
/// counter-unique so the macro can nest (e.g. a lambda argument whose body
/// itself propagates statuses) without -Wshadow findings.
#define BBV_RETURN_NOT_OK(expr)             \
  BBV_RETURN_NOT_OK_IMPL_(                  \
      BBV_STATUS_MACRO_CONCAT_(_bbv_status, __COUNTER__), expr)

#define BBV_RETURN_NOT_OK_IMPL_(status_var, expr)  \
  do {                                             \
    ::bbv::common::Status status_var = (expr);     \
    if (!status_var.ok()) return status_var;       \
  } while (false)

}  // namespace bbv::common

#endif  // BBV_COMMON_STATUS_H_
