#ifndef BBV_COMMON_STATUS_H_
#define BBV_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace bbv::common {

/// Machine-readable error category, modeled after the Arrow/RocksDB status
/// idiom. The library does not throw exceptions across its public API;
/// fallible operations return a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNotImplemented,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

/// Propagates a non-OK status to the caller.
#define BBV_RETURN_NOT_OK(expr)                        \
  do {                                                 \
    ::bbv::common::Status _bbv_status = (expr);        \
    if (!_bbv_status.ok()) return _bbv_status;         \
  } while (false)

}  // namespace bbv::common

#endif  // BBV_COMMON_STATUS_H_
