#ifndef BBV_COMMON_PARALLEL_H_
#define BBV_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace bbv::common {

/// Worker count for parallel sections: the BBV_THREADS environment variable
/// when set to a positive integer (re-read on every call, so tests and
/// benchmarks can switch counts within one process), otherwise the hardware
/// concurrency. Always at least 1.
int ConfiguredThreadCount();

/// Number of hardware threads visible to the process (>= 1): the fallback
/// for ConfiguredThreadCount, exported so benchmarks can record it without
/// touching std::thread themselves (the lint "thread" rule bans that).
int HardwareThreadCount();

/// Fixed-size pool of worker threads draining a shared task queue. This is
/// the only place in the repository allowed to own raw std::thread objects
/// (enforced by the bbv_lint "thread" rule); all concurrency flows through
/// ParallelFor/ParallelMap below so the determinism contract holds
/// everywhere.
class ThreadPool {
 public:
  /// Starts `num_workers` worker threads (0 is valid; workers can be added
  /// later with EnsureWorkers).
  explicit ThreadPool(int num_workers);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Grows the pool to at least `count` workers (never shrinks).
  void EnsureWorkers(int count);

  int num_workers() const;

  /// True when the calling thread is executing pool work (including a caller
  /// thread participating in a ParallelFor). Nested parallel sections detect
  /// this and run serially instead of deadlocking on the shared pool.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  mutable Mutex mutex_;
  // condition_variable_any so it can wait on the annotated Mutex directly.
  std::condition_variable_any wake_;
  std::deque<std::function<void()>> tasks_ BBV_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ BBV_GUARDED_BY(mutex_);
  bool stopping_ BBV_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool shared by all parallel sections, created on first
/// parallel use and grown on demand up to the largest requested count.
ThreadPool& SharedThreadPool();

struct ParallelOptions {
  /// Worker count for this section; 0 means ConfiguredThreadCount().
  int threads = 0;
  /// Sections smaller than this per thread shrink their thread count, so
  /// cheap loops are not swamped by scheduling overhead.
  size_t min_items_per_thread = 1;
};

/// Invokes `body(i)` for every i in [0, n), distributing fixed index chunks
/// over the shared pool (the calling thread participates). Falls back to a
/// plain serial loop when the effective thread count is 1 or the section is
/// nested inside another parallel section.
///
/// Determinism contract: `body` must not depend on execution order — each
/// index writes only its own output slot and draws randomness only from a
/// pre-forked per-index Rng. Under that contract results are bit-identical
/// at every thread count, with the serial loop as the reference.
///
/// Every index runs even after a failure (so error reporting is scheduling
/// independent); the returned Status is the one from the lowest failing
/// index, and an exception from the lowest throwing index is rethrown on the
/// calling thread.
[[nodiscard]] Status ParallelFor(
    size_t n, const std::function<Status(size_t)>& body,
    const ParallelOptions& options = {});

/// ParallelFor producing a value per index: returns the vector of all n
/// results, or the lowest-index error. T does not need to be
/// default-constructible.
template <typename T>
[[nodiscard]] Result<std::vector<T>> ParallelMap(
    size_t n, const std::function<Result<T>(size_t)>& body,
    const ParallelOptions& options = {}) {
  std::vector<std::optional<T>> slots(n);
  BBV_RETURN_NOT_OK(ParallelFor(
      n,
      [&](size_t i) -> Status {
        BBV_ASSIGN_OR_RETURN(T value, body(i));
        slots[i] = std::move(value);
        return Status::OK();
      },
      options));
  std::vector<T> values;
  values.reserve(n);
  for (std::optional<T>& slot : slots) {
    values.push_back(std::move(*slot));
  }
  return values;
}

}  // namespace bbv::common

#endif  // BBV_COMMON_PARALLEL_H_
