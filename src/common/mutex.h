#ifndef BBV_COMMON_MUTEX_H_
#define BBV_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace bbv::common {

/// std::mutex wrapped as a clang thread-safety *capability*. The standard
/// library's own mutex carries no annotations (libstdc++ ships none), so
/// locking it is invisible to -Wthread-safety; this wrapper is what lets
/// BBV_GUARDED_BY contracts on members actually be checked. It also
/// satisfies BasicLockable (lower-case lock/unlock), so it can be passed
/// directly to std::condition_variable_any::wait.
class BBV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BBV_ACQUIRE() { mutex_.lock(); }
  void Unlock() BBV_RELEASE() { mutex_.unlock(); }

  /// BasicLockable spelling for std::condition_variable_any. The analysis
  /// does not track waits (the wait itself unlocks and relocks, leaving the
  /// capability held across the call from the checker's point of view).
  void lock() BBV_ACQUIRE() { mutex_.lock(); }
  void unlock() BBV_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock for Mutex, visible to the analysis as a scoped capability —
/// the std::lock_guard equivalent for annotated code.
class BBV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) BBV_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() BBV_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace bbv::common

#endif  // BBV_COMMON_MUTEX_H_
