#ifndef BBV_DATASETS_REGISTRY_H_
#define BBV_DATASETS_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace bbv::datasets {

/// Generation options shared by all dataset factories.
struct DatasetOptions {
  size_t num_rows = 4000;
  /// Side length for the image datasets (digits / fashion).
  size_t image_side = 16;
};

/// Names of all bundled datasets: income, heart, bank, tweets, digits,
/// fashion — matching the paper's evaluation.
std::vector<std::string> DatasetNames();

/// Generates the named dataset, or InvalidArgument for an unknown name.
common::Result<data::Dataset> MakeByName(const std::string& name,
                                         const DatasetOptions& options,
                                         common::Rng& rng);

}  // namespace bbv::datasets

#endif  // BBV_DATASETS_REGISTRY_H_
