#include "datasets/tabular.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace bbv::datasets {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double ClippedGaussian(common::Rng& rng, double mean, double stddev,
                       double low, double high) {
  return std::clamp(rng.Gaussian(mean, stddev), low, high);
}

/// Samples an index from unnormalized weights.
size_t SampleIndex(common::Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng.Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace

data::Dataset MakeIncome(size_t num_rows, common::Rng& rng) {
  const std::vector<std::string> kEducation = {
      "HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate"};
  const std::vector<double> kEducationWeights = {0.35, 0.25, 0.25, 0.10, 0.05};
  const std::vector<std::string> kOccupation = {
      "Service", "Manual", "Admin", "Sales", "Tech", "Exec-managerial"};
  const std::vector<double> kOccupationWeights = {0.2, 0.2, 0.2, 0.15, 0.15,
                                                  0.1};
  const std::vector<double> kOccupationScore = {0.0, 0.0, 0.7, 0.9, 1.6, 2.2};
  const std::vector<std::string> kWorkclass = {"Private", "Government",
                                               "Self-employed"};
  const std::vector<std::string> kMarital = {"Married", "Never-married",
                                             "Divorced"};

  std::vector<double> age(num_rows);
  std::vector<double> hours(num_rows);
  std::vector<double> capital_gain(num_rows);
  std::vector<double> education_years(num_rows);
  std::vector<std::string> education(num_rows);
  std::vector<std::string> relationship(num_rows);
  std::vector<std::string> occupation(num_rows);
  std::vector<std::string> workclass(num_rows);
  std::vector<std::string> marital(num_rows);
  std::vector<int> labels(num_rows);

  for (size_t i = 0; i < num_rows; ++i) {
    age[i] = std::round(ClippedGaussian(rng, 40.0, 12.0, 18.0, 80.0));
    hours[i] = std::round(ClippedGaussian(rng, 42.0, 10.0, 10.0, 80.0));
    capital_gain[i] =
        rng.Bernoulli(0.8)
            ? 0.0
            : std::round(std::exp(rng.Gaussian(7.0, 1.2)));
    const size_t edu = SampleIndex(rng, kEducationWeights);
    const size_t occ = SampleIndex(rng, kOccupationWeights);
    education[i] = kEducation[edu];
    // Redundant numeric encoding of education (like adult's education-num).
    education_years[i] = std::round(
        ClippedGaussian(rng, 10.0 + 2.0 * static_cast<double>(edu), 0.7, 8.0,
                        20.0));
    occupation[i] = kOccupation[occ];
    workclass[i] = kWorkclass[rng.UniformInt(kWorkclass.size())];
    // Marital status mildly correlated with age.
    marital[i] = age[i] > 32.0 && rng.Bernoulli(0.7)
                     ? kMarital[0]
                     : kMarital[1 + rng.UniformInt(static_cast<size_t>(2))];
    // Redundant with marital status (like adult's relationship attribute).
    relationship[i] = marital[i] == "Married"
                          ? (rng.Bernoulli(0.6) ? "Husband" : "Wife")
                          : (rng.Bernoulli(0.7) ? "Not-in-family"
                                                : "Own-child");
    const double married_bonus = marital[i] == "Married" ? 0.5 : 0.0;
    const double score = 0.045 * (age[i] - 40.0) +
                         0.9 * static_cast<double>(edu) +
                         kOccupationScore[occ] +
                         0.05 * (hours[i] - 42.0) +
                         0.35 * std::log1p(capital_gain[i] / 1000.0) +
                         married_bonus - 2.1;
    labels[i] = rng.Bernoulli(Sigmoid(1.1 * score)) ? 1 : 0;
  }

  data::Dataset dataset;
  BBV_CHECK(dataset.features.AddColumn(data::Column::Numeric("age", age)).ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Numeric("hours_per_week", hours))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Numeric("capital_gain", capital_gain))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(
                    data::Column::Numeric("education_years", education_years))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("education", education))
                .ok());
  BBV_CHECK(
      dataset.features
          .AddColumn(data::Column::Categorical("relationship", relationship))
          .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("occupation", occupation))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("workclass", workclass))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("marital_status", marital))
                .ok());
  dataset.labels = std::move(labels);
  dataset.num_classes = 2;
  dataset.class_names = {"<=50K", ">50K"};
  return dataset;
}

data::Dataset MakeHeart(size_t num_rows, common::Rng& rng) {
  const std::vector<std::string> kLevels = {"normal", "above-normal",
                                            "well-above-normal"};

  std::vector<double> age(num_rows);
  std::vector<double> height(num_rows);
  std::vector<double> weight(num_rows);
  std::vector<double> ap_hi(num_rows);
  std::vector<double> ap_lo(num_rows);
  std::vector<std::string> gender(num_rows);
  std::vector<std::string> cholesterol(num_rows);
  std::vector<std::string> glucose(num_rows);
  std::vector<std::string> smoke(num_rows);
  std::vector<std::string> active(num_rows);
  std::vector<int> labels(num_rows);

  for (size_t i = 0; i < num_rows; ++i) {
    // Latent cardiovascular risk drives both features and label.
    const double risk = rng.Uniform();
    age[i] = std::round(
        ClippedGaussian(rng, 45.0 + 18.0 * risk, 7.0, 30.0, 80.0));
    const bool male = rng.Bernoulli(0.5);
    gender[i] = male ? "male" : "female";
    height[i] = std::round(
        ClippedGaussian(rng, male ? 172.0 : 160.0, 7.0, 140.0, 200.0));
    weight[i] = std::round(ClippedGaussian(
        rng, 64.0 + 24.0 * risk + (male ? 8.0 : 0.0), 10.0, 40.0, 160.0));
    ap_hi[i] = std::round(
        ClippedGaussian(rng, 112.0 + 38.0 * risk, 12.0, 80.0, 220.0));
    ap_lo[i] = std::round(
        ClippedGaussian(rng, 72.0 + 22.0 * risk, 9.0, 50.0, 140.0));
    const size_t chol_level = SampleIndex(
        rng, {1.0 - 0.6 * risk + 0.2, 0.4 + 0.3 * risk, 0.1 + 0.6 * risk});
    cholesterol[i] = kLevels[chol_level];
    const size_t gluc_level = SampleIndex(
        rng, {1.2 - 0.5 * risk, 0.3 + 0.2 * risk, 0.1 + 0.4 * risk});
    glucose[i] = kLevels[gluc_level];
    smoke[i] = rng.Bernoulli(0.15 + 0.15 * risk) ? "yes" : "no";
    active[i] = rng.Bernoulli(0.85 - 0.3 * risk) ? "yes" : "no";
    labels[i] = rng.Bernoulli(Sigmoid(5.0 * (risk - 0.5))) ? 1 : 0;
  }

  data::Dataset dataset;
  BBV_CHECK(dataset.features.AddColumn(data::Column::Numeric("age", age)).ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("height", height)).ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("weight", weight)).ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("ap_hi", ap_hi)).ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("ap_lo", ap_lo)).ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("gender", gender))
                .ok());
  BBV_CHECK(
      dataset.features
          .AddColumn(data::Column::Categorical("cholesterol", cholesterol))
          .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("glucose", glucose))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("smoke", smoke))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("active", active))
                .ok());
  dataset.labels = std::move(labels);
  dataset.num_classes = 2;
  dataset.class_names = {"no-disease", "disease"};
  return dataset;
}

data::Dataset MakeBank(size_t num_rows, common::Rng& rng) {
  const std::vector<std::string> kJob = {
      "admin",   "blue-collar", "entrepreneur", "management",
      "retired", "services",    "student",      "technician"};
  const std::vector<std::string> kMarital = {"married", "single", "divorced"};
  const std::vector<std::string> kEducation = {"primary", "secondary",
                                               "tertiary"};

  std::vector<double> age(num_rows);
  std::vector<double> balance(num_rows);
  std::vector<double> duration(num_rows);
  std::vector<double> campaign(num_rows);
  std::vector<double> previous(num_rows);
  std::vector<std::string> job(num_rows);
  std::vector<std::string> marital(num_rows);
  std::vector<std::string> education(num_rows);
  std::vector<std::string> housing(num_rows);
  std::vector<std::string> loan(num_rows);
  std::vector<int> labels(num_rows);

  for (size_t i = 0; i < num_rows; ++i) {
    // Latent propensity to subscribe drives call duration, balance, history.
    const double propensity = rng.Uniform();
    age[i] = std::round(ClippedGaussian(rng, 41.0, 11.0, 18.0, 90.0));
    balance[i] = std::round(
        ClippedGaussian(rng, 300.0 + 2200.0 * propensity, 700.0, -800.0,
                        8000.0));
    duration[i] = std::round(
        ClippedGaussian(rng, 90.0 + 420.0 * propensity, 90.0, 5.0, 1200.0));
    campaign[i] = 1.0 + std::floor(std::exp(
        rng.Gaussian(0.6 * (1.0 - propensity), 0.6)));
    previous[i] = rng.Bernoulli(0.2 + 0.4 * propensity)
                      ? std::round(rng.Uniform(1.0, 6.0))
                      : 0.0;
    const size_t job_index = rng.UniformInt(kJob.size());
    job[i] = kJob[job_index];
    marital[i] = kMarital[SampleIndex(rng, {0.6, 0.28, 0.12})];
    education[i] =
        kEducation[SampleIndex(rng, {0.15, 0.5, 0.35})];
    housing[i] = rng.Bernoulli(0.55 - 0.2 * propensity) ? "yes" : "no";
    loan[i] = rng.Bernoulli(0.16 - 0.08 * propensity) ? "yes" : "no";
    const double retiree_bonus = job[i] == "retired" || job[i] == "student"
                                     ? 0.5
                                     : 0.0;
    const double score = 6.5 * (propensity - 0.5) + retiree_bonus +
                         (education[i] == "tertiary" ? 0.3 : 0.0);
    labels[i] = rng.Bernoulli(Sigmoid(score)) ? 1 : 0;
  }

  data::Dataset dataset;
  BBV_CHECK(dataset.features.AddColumn(data::Column::Numeric("age", age)).ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("balance", balance))
          .ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("duration", duration))
          .ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("campaign", campaign))
          .ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Numeric("previous", previous))
          .ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Categorical("job", job)).ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("marital", marital))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("education", education))
                .ok());
  BBV_CHECK(dataset.features
                .AddColumn(data::Column::Categorical("housing", housing))
                .ok());
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Categorical("loan", loan)).ok());
  dataset.labels = std::move(labels);
  dataset.num_classes = 2;
  dataset.class_names = {"no-subscription", "subscription"};
  return dataset;
}

}  // namespace bbv::datasets
