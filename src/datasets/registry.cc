#include "datasets/registry.h"

#include "datasets/images.h"
#include "datasets/tabular.h"
#include "datasets/text.h"

namespace bbv::datasets {

std::vector<std::string> DatasetNames() {
  return {"income", "heart", "bank", "tweets", "digits", "fashion"};
}

common::Result<data::Dataset> MakeByName(const std::string& name,
                                         const DatasetOptions& options,
                                         common::Rng& rng) {
  if (name == "income") return MakeIncome(options.num_rows, rng);
  if (name == "heart") return MakeHeart(options.num_rows, rng);
  if (name == "bank") return MakeBank(options.num_rows, rng);
  if (name == "tweets") return MakeTweets(options.num_rows, rng);
  if (name == "digits") {
    return MakeDigits(options.num_rows, options.image_side, rng);
  }
  if (name == "fashion") {
    return MakeFashion(options.num_rows, options.image_side, rng);
  }
  return common::Status::InvalidArgument("unknown dataset '" + name + "'");
}

}  // namespace bbv::datasets
