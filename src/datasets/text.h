#ifndef BBV_DATASETS_TEXT_H_
#define BBV_DATASETS_TEXT_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace bbv::datasets {

/// Cyber-troll tweets analogue (DataTurks dataset in the paper): one text
/// column "text"; the label marks trolling/insulting tweets. Tweets are
/// generated from overlapping troll / benign / filler vocabularies so that
/// an n-gram model reaches high-but-imperfect accuracy and the adversarial
/// leetspeak corruption destroys the informative tokens.
data::Dataset MakeTweets(size_t num_rows, common::Rng& rng);

}  // namespace bbv::datasets

#endif  // BBV_DATASETS_TEXT_H_
