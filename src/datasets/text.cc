#include "datasets/text.h"

#include <string>
#include <vector>

namespace bbv::datasets {

data::Dataset MakeTweets(size_t num_rows, common::Rng& rng) {
  const std::vector<std::string> kTroll = {
      "idiot",   "stupid", "loser",    "hate",  "dumb",  "shut",
      "ugly",    "trash",  "moron",    "pathetic", "clown", "garbage",
      "worst",   "fool",   "disgusting"};
  const std::vector<std::string> kBenign = {
      "love",   "great",  "thanks", "happy",  "nice",    "awesome",
      "friend", "music",  "coffee", "sunny",  "weekend", "excited",
      "best",   "cool",   "beautiful"};
  const std::vector<std::string> kFiller = {
      "you",   "the",  "this",  "that",  "just", "really", "so",
      "today", "game", "people", "time", "going", "day",   "now",
      "what",  "lol",  "omg",   "my",    "a",    "is"};

  std::vector<std::string> texts(num_rows);
  std::vector<int> labels(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    const bool troll = rng.Bernoulli(0.5);
    labels[i] = troll ? 1 : 0;
    const size_t length = 5 + rng.UniformInt(static_cast<size_t>(8));
    std::string text;
    for (size_t t = 0; t < length; ++t) {
      if (!text.empty()) text += ' ';
      const double u = rng.Uniform();
      if (u < 0.35) {
        // Class-informative token, with a little cross-class leakage so the
        // problem is not trivially separable.
        const bool flip = rng.Bernoulli(0.08);
        const bool use_troll = troll != flip;
        text += use_troll ? rng.Choice(kTroll) : rng.Choice(kBenign);
      } else {
        text += rng.Choice(kFiller);
      }
    }
    texts[i] = text;
  }

  data::Dataset dataset;
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Text("text", texts)).ok());
  dataset.labels = std::move(labels);
  dataset.num_classes = 2;
  dataset.class_names = {"benign", "troll"};
  return dataset;
}

}  // namespace bbv::datasets
