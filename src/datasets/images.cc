#include "datasets/images.h"

#include <algorithm>
#include <cmath>

namespace bbv::datasets {

namespace {

/// Tiny raster canvas addressed in unit coordinates, with per-image jitter
/// applied at construction so every rendered stroke shifts coherently.
class Canvas {
 public:
  Canvas(size_t side, common::Rng& rng)
      : side_(side),
        pixels_(side * side, 0.0),
        offset_y_(rng.Uniform(-0.12, 0.12)),
        offset_x_(rng.Uniform(-0.12, 0.12)),
        intensity_(rng.Uniform(0.6, 1.0)),
        thickness_(rng.Uniform(0.04, 0.11)) {}

  /// Fills the axis-aligned rectangle [y0,y1] x [x0,x1] (unit coords).
  void FillRect(double y0, double y1, double x0, double x1) {
    const double s = static_cast<double>(side_);
    const auto row0 = ClampIndex((y0 + offset_y_) * s);
    const auto row1 = ClampIndex((y1 + offset_y_) * s);
    const auto col0 = ClampIndex((x0 + offset_x_) * s);
    const auto col1 = ClampIndex((x1 + offset_x_) * s);
    for (size_t r = row0; r <= row1; ++r) {
      for (size_t c = col0; c <= col1; ++c) {
        pixels_[r * side_ + c] = intensity_;
      }
    }
  }

  /// Horizontal stroke at height y spanning [x0, x1].
  void HStroke(double y, double x0, double x1) {
    FillRect(y - thickness_ / 2.0, y + thickness_ / 2.0, x0, x1);
  }

  /// Vertical stroke at x spanning [y0, y1].
  void VStroke(double x, double y0, double y1) {
    FillRect(y0, y1, x - thickness_ / 2.0, x + thickness_ / 2.0);
  }

  /// Adds gaussian pixel noise and clips to [0, 1].
  std::vector<double> Finish(common::Rng& rng, double noise_stddev = 0.09) {
    for (double& p : pixels_) {
      p = std::clamp(p + rng.Gaussian(0.0, noise_stddev), 0.0, 1.0);
    }
    return std::move(pixels_);
  }

 private:
  size_t ClampIndex(double value) const {
    const auto index = static_cast<long>(std::floor(value));
    return static_cast<size_t>(
        std::clamp(index, 0L, static_cast<long>(side_) - 1));
  }

  size_t side_;
  std::vector<double> pixels_;
  double offset_y_;
  double offset_x_;
  double intensity_;
  double thickness_;
};

}  // namespace

std::vector<double> RenderDigit(int digit, size_t side, common::Rng& rng) {
  BBV_CHECK(digit == 3 || digit == 5) << "only digits 3 and 5 are supported";
  Canvas canvas(side, rng);
  if (digit == 3) {
    // Three horizontal bars connected on the right.
    canvas.HStroke(0.18, 0.28, 0.72);
    canvas.HStroke(0.50, 0.34, 0.72);
    canvas.HStroke(0.82, 0.28, 0.72);
    canvas.VStroke(0.72, 0.18, 0.82);
  } else {
    // Top bar, left upper vertical, middle bar, right lower vertical,
    // bottom bar.
    canvas.HStroke(0.18, 0.28, 0.72);
    canvas.VStroke(0.28, 0.18, 0.50);
    canvas.HStroke(0.50, 0.28, 0.70);
    canvas.VStroke(0.70, 0.50, 0.82);
    canvas.HStroke(0.82, 0.28, 0.70);
  }
  return canvas.Finish(rng);
}

std::vector<double> RenderFashionItem(int category, size_t side,
                                      common::Rng& rng) {
  BBV_CHECK(category == 0 || category == 1)
      << "categories: 0 = sneaker, 1 = ankle boot";
  Canvas canvas(side, rng);
  if (category == 0) {
    // Sneaker: long flat sole with a low body and a toe wedge.
    canvas.FillRect(0.72, 0.82, 0.10, 0.90);           // sole
    canvas.FillRect(0.55, 0.72, 0.30, 0.85);           // low body
    canvas.FillRect(0.62, 0.72, 0.10, 0.30);           // toe
  } else {
    // Ankle boot: shorter sole, foot block, and a shaft of variable
    // height (short shafts approach the sneaker silhouette).
    const double shaft_top = rng.Uniform(0.18, 0.42);
    canvas.FillRect(0.74, 0.84, 0.15, 0.80);           // sole
    canvas.FillRect(0.58, 0.74, 0.25, 0.78);           // foot
    canvas.FillRect(shaft_top, 0.58, 0.52, 0.78);      // shaft
  }
  return canvas.Finish(rng);
}

namespace {

data::Dataset MakeImageDataset(size_t num_rows, size_t image_side,
                               common::Rng& rng, bool fashion) {
  std::vector<std::vector<double>> images(num_rows);
  std::vector<int> labels(num_rows);
  // Small label noise keeps the tasks realistically imperfect (fashion
  // products are more ambiguous than digits).
  const double label_noise = fashion ? 0.02 : 0.005;
  for (size_t i = 0; i < num_rows; ++i) {
    const bool second_class = rng.Bernoulli(0.5);
    if (fashion) {
      images[i] = RenderFashionItem(second_class ? 1 : 0, image_side, rng);
    } else {
      images[i] = RenderDigit(second_class ? 5 : 3, image_side, rng);
    }
    const bool flipped = rng.Bernoulli(label_noise);
    labels[i] = (second_class != flipped) ? 1 : 0;
  }
  data::Dataset dataset;
  BBV_CHECK(
      dataset.features.AddColumn(data::Column::Image("image", images)).ok());
  dataset.labels = std::move(labels);
  dataset.num_classes = 2;
  dataset.class_names = fashion
                            ? std::vector<std::string>{"sneaker", "ankle-boot"}
                            : std::vector<std::string>{"3", "5"};
  return dataset;
}

}  // namespace

data::Dataset MakeDigits(size_t num_rows, size_t image_side,
                         common::Rng& rng) {
  return MakeImageDataset(num_rows, image_side, rng, /*fashion=*/false);
}

data::Dataset MakeFashion(size_t num_rows, size_t image_side,
                          common::Rng& rng) {
  return MakeImageDataset(num_rows, image_side, rng, /*fashion=*/true);
}

}  // namespace bbv::datasets
