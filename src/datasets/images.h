#ifndef BBV_DATASETS_IMAGES_H_
#define BBV_DATASETS_IMAGES_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace bbv::datasets {

/// Synthetic stand-ins for the paper's two binary image datasets (MNIST
/// digits 3-vs-5 and Fashion-MNIST sneaker-vs-ankle-boot). Images are
/// rendered from parametric stroke templates with random translation,
/// thickness, intensity and pixel noise, so the classes are cleanly but not
/// trivially separable — the regime where the CNN scores high and noise /
/// rotation corruptions degrade it smoothly.

/// Renders one digit ('3' or '5') on a side x side canvas.
std::vector<double> RenderDigit(int digit, size_t side, common::Rng& rng);

/// Renders one fashion item (0 = sneaker, 1 = ankle boot).
std::vector<double> RenderFashionItem(int category, size_t side,
                                      common::Rng& rng);

/// MNIST-3-vs-5 analogue; one image column "image", label 0 for '3' and 1
/// for '5'.
data::Dataset MakeDigits(size_t num_rows, size_t image_side, common::Rng& rng);

/// Fashion-MNIST analogue; label 0 for sneaker, 1 for ankle boot.
data::Dataset MakeFashion(size_t num_rows, size_t image_side,
                          common::Rng& rng);

}  // namespace bbv::datasets

#endif  // BBV_DATASETS_IMAGES_H_
