#ifndef BBV_DATASETS_TABULAR_H_
#define BBV_DATASETS_TABULAR_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace bbv::datasets {

/// Synthetic stand-ins for the paper's three tabular datasets. No network
/// access is available for the originals (UCI adult, Kaggle cardio, UCI bank
/// marketing), so each generator reproduces the original's schema shape
/// (mixed numeric/categorical attributes, comparable cardinalities) with a
/// class-conditional generative process and label noise tuned so that the
/// black box models reach realistic (non-trivial, non-perfect) accuracy.
/// DESIGN.md documents why this preserves the experiments' behaviour.

/// Adult-income analogue: predict whether a person earns more than $50K.
/// Columns: age, hours_per_week, capital_gain (numeric); education,
/// occupation, workclass, marital_status (categorical).
data::Dataset MakeIncome(size_t num_rows, common::Rng& rng);

/// Cardiovascular-disease analogue: predict the presence of heart disease.
/// Columns: age, height, weight, ap_hi, ap_lo (numeric); gender,
/// cholesterol, glucose, smoke, active (categorical).
data::Dataset MakeHeart(size_t num_rows, common::Rng& rng);

/// Bank-marketing analogue: predict whether a customer subscribes a term
/// deposit. Columns: age, balance, duration, campaign, previous (numeric);
/// job, marital, education, housing, loan (categorical).
data::Dataset MakeBank(size_t num_rows, common::Rng& rng);

}  // namespace bbv::datasets

#endif  // BBV_DATASETS_TABULAR_H_
