#ifndef BBV_CORE_CONFORMAL_H_
#define BBV_CORE_CONFORMAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "core/score_estimate.h"

namespace bbv::core {

/// Split-conformal calibrator for the performance predictor's score
/// estimates (ROADMAP "uncertainty-carrying estimates"; the coverage/length
/// evaluation mirrors the arc conformal suite).
///
/// Calibration consumes out-of-fold (truth, prediction) pairs from the
/// predictor's meta-training set — fold models predict examples they never
/// saw, so the residuals are honest — and stores the sorted nonconformity
/// scores. An interval query around a point prediction looks up the
/// finite-sample quantile at rank ceil((n + 1) * coverage) and widens the
/// point by it:
///
///  * kSplitConformal — nonconformity |truth - prediction|; every interval
///    at a given coverage has the same width (marginal calibration).
///  * kQuantileForest — locally scaled variant: the per-tree leaf responses
///    already sitting in ml::ForestKernel's value array act as a
///    quantile-regression-forest difficulty estimate. Nonconformity is
///    |truth - prediction| / max(spread, kSpreadFloor) with `spread` the
///    inter-quartile range of the fold forest's per-tree predictions, and
///    serving intervals re-scale by the final forest's per-row spread — so
///    easy rows (trees agree) get tight intervals and ambiguous rows wide
///    ones, while the marginal guarantee is unchanged.
///
/// Both modes give finite-sample marginal coverage >= coverage_level under
/// exchangeability of calibration and serving draws.
///
/// Determinism contract: the stored scores are sorted ascending (a pure
/// function of the calibration multiset), so the serialized state — and
/// every interval — is byte-identical at any BBV_THREADS and across
/// Save/Load round trips.
class ConformalCalibrator {
 public:
  enum class Mode : int32_t {
    kSplitConformal = 0,
    kQuantileForest = 1,
  };

  /// Spread floor for kQuantileForest: a degenerate forest whose trees all
  /// agree must not collapse the interval to a point the residuals never
  /// certified.
  static constexpr double kSpreadFloor = 1e-3;

  /// Uncalibrated: every Interval() is degenerate (lo == hi == point).
  ConformalCalibrator() = default;

  /// Builds the calibrator from out-of-fold pairs. `spreads` is read only
  /// in kQuantileForest mode (pass an empty span for kSplitConformal) and
  /// must then be truths.size() long. Requires at least one pair; all
  /// inputs must be finite.
  static common::Result<ConformalCalibrator> Calibrate(
      Mode mode, std::span<const double> truths,
      std::span<const double> predictions, std::span<const double> spreads);

  bool calibrated() const { return !scores_.empty(); }
  Mode mode() const { return mode_; }
  size_t num_calibration_examples() const { return scores_.size(); }

  /// Finite-sample residual quantile at `coverage` in (0, 1): the k-th
  /// smallest stored score with k = ceil((n + 1) * coverage), clamped to n
  /// (coverage demands beyond (n / (n + 1)) saturate at the largest
  /// observed nonconformity). Requires calibrated().
  double QuantileAt(double coverage) const;

  /// Interval around `point` at the given coverage; `spread` is the
  /// per-row tree spread (kQuantileForest) and ignored for kSplitConformal.
  /// Uncalibrated calibrators return ScoreEstimate::Degenerate(point);
  /// endpoints are clamped to [0, 1], the point never is.
  ScoreEstimate Interval(double point, double spread, double coverage) const;

  /// Sorted nonconformity scores (calibration state; ascending).
  const std::vector<double>& scores() const { return scores_; }

  /// Appends the calibration state to an open archive / restores it.
  /// Canonical: equal calibration multisets serialize byte-identically.
  void Save(common::BinaryWriter& writer) const;
  static common::Result<ConformalCalibrator> Load(
      common::BinaryReader& reader);

 private:
  Mode mode_ = Mode::kSplitConformal;
  std::vector<double> scores_;
};

}  // namespace bbv::core

#endif  // BBV_CORE_CONFORMAL_H_
