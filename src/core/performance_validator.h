#ifndef BBV_CORE_PERFORMANCE_VALIDATOR_H_
#define BBV_CORE_PERFORMANCE_VALIDATOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/dataset.h"
#include "errors/error_gen.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"

namespace bbv::core {

/// The paper's performance *validator* (PPM in the evaluation): a binary
/// classifier that decides whether the black box model's quality on a
/// serving batch stays within a user-defined relative drop threshold t of
/// its held-out test score, i.e. whether
///   L(serving) >= (1 - t) * L(test).
/// It is trained on corrupted copies of the test set. Its features combine
/// the output percentiles, an internal performance predictor's score
/// estimate, and Kolmogorov-Smirnov statistics between the model's outputs
/// on the (possibly corrupted) batch and its retained outputs on the clean
/// test set (the paper keeps Y-hat_test around exactly for this).
class PerformanceValidator {
 public:
  struct Options {
    /// Acceptable relative quality drop, e.g. 0.05 for 5%.
    double threshold = 0.05;
    /// Corrupted copies of D_test per generator for meta-training.
    int corruptions_per_generator = 100;
    int clean_copies = 5;
    std::vector<double> percentile_points;
    ScoreMetric metric = ScoreMetric::kAccuracy;
    /// When non-zero, every meta-training example is computed on a random
    /// row subset of this size (set to the expected serving batch size so
    /// the percentile and KS features carry the same sampling noise at
    /// training and validation time).
    size_t meta_batch_size = 0;
    /// Ablation switches: drop the Kolmogorov-Smirnov features or the
    /// internal predictor's estimate from the decision model's inputs.
    bool use_ks_features = true;
    bool use_predictor_feature = true;
    /// Configuration of the gradient-boosted decision tree that makes the
    /// accept/reject decision (paper §4).
    ml::GradientBoostedTrees::Options gbdt;
    /// Options for the internal performance predictor whose estimate is one
    /// of the validator's features.
    PerformancePredictor::Options predictor;

    Options() {
      gbdt.num_rounds = 40;
      gbdt.tree.max_depth = 3;
      // The internal predictor shares the corrupted datasets; its own
      // corruption loop is skipped (see Train), so keep its grid small.
      predictor.tree_count_grid = {50};
    }
  };

  PerformanceValidator() : PerformanceValidator(Options{}) {}
  explicit PerformanceValidator(Options options);

  /// Meta-trains the validator: corrupts `test` with each generator,
  /// labels each corrupted copy by whether the model's true score stayed
  /// within the threshold, and fits the GBDT on the combined features.
  common::Status Train(
      const ml::BlackBox& model, const data::Dataset& test,
      const std::vector<const errors::ErrorGen*>& generators,
      common::Rng& rng);

  /// True if the predictions on `serving` can be relied upon (quality drop
  /// within the threshold), false if an alarm should be raised.
  common::Result<bool> Validate(const ml::BlackBox& model,
                                const data::DataFrame& serving) const;

  /// Validation decision from precomputed model outputs.
  common::Result<bool> ValidateFromProba(
      const linalg::Matrix& probabilities) const;

  /// Persists the trained validator (decision model, retained test
  /// outputs, internal predictor and configuration) for deployment.
  common::Status Save(std::ostream& out) const;
  static common::Result<PerformanceValidator> Load(std::istream& in);

  double threshold() const { return options_.threshold; }
  double test_score() const { return test_score_; }
  bool trained() const { return trained_; }

 private:
  /// Feature vector: percentiles + per-class KS statistic/p-value against
  /// the retained test outputs + internal predictor estimate.
  std::vector<double> BuildFeatures(const linalg::Matrix& probabilities) const;

  Options options_;
  bool trained_ = false;
  bool degenerate_ = false;  // meta-training saw only one class
  int degenerate_label_ = 1;
  /// Decision operating point: accept when P(ok) >= this. Calibrated on
  /// the meta-training examples to maximize the alarm-class F1, which
  /// corrects the class imbalance at loose thresholds (few violations).
  double decision_threshold_ = 0.5;
  double test_score_ = 0.0;
  linalg::Matrix test_probabilities_;  // retained Y-hat_test
  PerformancePredictor predictor_;
  ml::GradientBoostedTrees decision_model_;
};

}  // namespace bbv::core

#endif  // BBV_CORE_PERFORMANCE_VALIDATOR_H_
