#ifndef BBV_CORE_PREDICTION_STATISTICS_H_
#define BBV_CORE_PREDICTION_STATISTICS_H_

#include <vector>

#include "linalg/matrix.h"

namespace bbv::core {

/// Default percentile grid: 0, 5, 10, ..., 100 (the paper collects "the 0th,
/// 5th, 10th, ... percentile" of the model outputs), plus extra resolution
/// at 1-4 and 96-99 for models with highly concentrated outputs.
std::vector<double> DefaultPercentilePoints();

/// The paper's prediction_statistics(Y-hat): a univariate non-parametric
/// summary of each output dimension of the black box model. Computes the
/// requested percentiles of every class-probability column and concatenates
/// them, yielding num_classes * points.size() features for the performance
/// predictor. Requires a non-empty probability matrix.
std::vector<double> PredictionStatistics(
    const linalg::Matrix& probabilities,
    const std::vector<double>& percentile_points = DefaultPercentilePoints());

/// Row-index-view variant: statistics of the sub-batch `rows` of
/// `probabilities` without materializing the sub-matrix. Equivalent to
/// PredictionStatistics(probabilities.SelectRows(rows), percentile_points);
/// used by the subsampled meta-training path, which would otherwise copy a
/// batch per repetition. Requires non-empty, in-range `rows`. No default
/// percentile grid here: a default would make two-argument calls with a
/// braced initializer list ambiguous against the overload above.
std::vector<double> PredictionStatistics(
    const linalg::Matrix& probabilities, const std::vector<size_t>& rows,
    const std::vector<double>& percentile_points);

}  // namespace bbv::core

#endif  // BBV_CORE_PREDICTION_STATISTICS_H_
