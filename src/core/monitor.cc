#include "core/monitor.h"

#include <algorithm>
#include <sstream>

#include "stats/descriptive.h"

namespace bbv::core {

ModelMonitor::ModelMonitor(const ml::BlackBox* model,
                           PerformancePredictor predictor, Options options)
    : model_(model), predictor_(std::move(predictor)), options_(options) {
  BBV_CHECK(model_ != nullptr);
  BBV_CHECK(predictor_.trained()) << "ModelMonitor needs a trained predictor";
  BBV_CHECK(options_.alarm_threshold > 0.0 && options_.alarm_threshold < 1.0);
  BBV_CHECK_GT(options_.history_limit, 0u);
}

common::Result<ModelMonitor::BatchReport> ModelMonitor::Observe(
    const data::DataFrame& serving) {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model_->PredictProba(serving));
  return ObserveFromProba(probabilities);
}

common::Result<ModelMonitor::BatchReport> ModelMonitor::ObserveFromProba(
    const linalg::Matrix& probabilities) {
  if (probabilities.rows() == 0) {
    return common::Status::InvalidArgument("empty serving batch");
  }
  BBV_ASSIGN_OR_RETURN(double estimate,
                       predictor_.EstimateScoreFromProba(probabilities));
  BatchReport report;
  report.batch_id = batches_observed_++;
  report.rows = probabilities.rows();
  report.estimated_score = estimate;
  report.reference_score = predictor_.test_score();
  report.relative_drop =
      report.reference_score > 0.0
          ? (report.reference_score - estimate) / report.reference_score
          : 0.0;
  report.alarm = report.relative_drop > options_.alarm_threshold;
  if (report.alarm) ++alarms_raised_;
  history_.push_back(report);
  if (history_.size() > options_.history_limit) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<ptrdiff_t>(
                                          history_.size() -
                                          options_.history_limit));
  }
  return report;
}

std::string ModelMonitor::Summary() const {
  std::ostringstream os;
  os << "ModelMonitor(" << model_->Name() << "): " << batches_observed_
     << " batches observed, " << alarms_raised_ << " alarms\n";
  os << "reference score: " << predictor_.test_score() << "\n";
  if (!history_.empty()) {
    std::vector<double> estimates;
    estimates.reserve(history_.size());
    for (const BatchReport& report : history_) {
      estimates.push_back(report.estimated_score);
    }
    const std::vector<double> bands =
        stats::Percentiles(estimates, {5.0, 50.0, 95.0});
    os << "recent estimates (" << history_.size()
       << " batches): p5=" << bands[0] << " median=" << bands[1]
       << " p95=" << bands[2] << "\n";
  }
  return os.str();
}

}  // namespace bbv::core
