#include "core/monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <utility>

#include "common/telemetry.h"
#include "stats/descriptive.h"

namespace bbv::core {

namespace {

/// Reference-score invariant shared by monitor construction and hot-swap:
/// a degenerate reference silently clamps relative_drop so alarms can never
/// fire against it.
common::Status ValidatePredictorReference(
    const PerformancePredictor& predictor) {
  const double reference = predictor.test_score();
  if (!std::isfinite(reference) || reference <= 0.0) {
    return common::Status::InvalidArgument(
        "reference score must be finite and strictly positive, got " +
        std::to_string(reference));
  }
  return common::Status::OK();
}

/// Shared validation for the factories and the CHECK-ing constructor;
/// returns a non-OK status describing the first violated invariant.
common::Status ValidateMonitorArguments(const PerformancePredictor& predictor,
                                        const ModelMonitor::Options& options) {
  if (!predictor.trained()) {
    return common::Status::FailedPrecondition(
        "ModelMonitor needs a trained predictor");
  }
  if (!(options.alarm_threshold > 0.0 && options.alarm_threshold < 1.0)) {
    return common::Status::InvalidArgument(
        "alarm_threshold must lie in (0, 1)");
  }
  if (options.history_limit == 0) {
    return common::Status::InvalidArgument("history_limit must be positive");
  }
  if (options.window_batches > 0 &&
      (options.sketch_resolution_bits < 1 ||
       options.sketch_resolution_bits > 24)) {
    return common::Status::InvalidArgument(
        "sketch_resolution_bits must lie in [1, 24] when window_batches is "
        "set");
  }
  // A non-positive reference used to silently clamp relative_drop to 0,
  // so alarms could never fire against it; reject it up front instead.
  return ValidatePredictorReference(predictor);
}

}  // namespace

common::Result<ModelMonitor> ModelMonitor::Create(
    const ml::BlackBox* model, PerformancePredictor predictor,
    Options options) {
  if (model == nullptr) {
    return common::Status::InvalidArgument("ModelMonitor needs a model");
  }
  BBV_RETURN_NOT_OK(ValidateMonitorArguments(predictor, options));
  return ModelMonitor(model, model->Name(),
                      std::make_shared<const PerformancePredictor>(
                          std::move(predictor)),
                      options);
}

common::Result<ModelMonitor> ModelMonitor::CreateForProba(
    std::string name, std::shared_ptr<const PerformancePredictor> predictor,
    Options options) {
  if (predictor == nullptr) {
    return common::Status::InvalidArgument(
        "CreateForProba needs a predictor");
  }
  BBV_RETURN_NOT_OK(ValidateMonitorArguments(*predictor, options));
  return ModelMonitor(nullptr, std::move(name), std::move(predictor),
                      options);
}

ModelMonitor::ModelMonitor(const ml::BlackBox* model,
                           PerformancePredictor predictor, Options options)
    : ModelMonitor(model, model != nullptr ? model->Name() : std::string(),
                   std::make_shared<const PerformancePredictor>(
                       std::move(predictor)),
                   options) {
  BBV_CHECK(model != nullptr) << "ModelMonitor needs a model";
}

ModelMonitor::ModelMonitor(
    const ml::BlackBox* model, std::string name,
    std::shared_ptr<const PerformancePredictor> predictor, Options options)
    : model_(model),
      name_(std::move(name)),
      predictor_(std::move(predictor)),
      options_(options) {
  const common::Status valid =
      ValidateMonitorArguments(*predictor_, options_);
  BBV_CHECK(valid.ok()) << valid.ToString();
}

common::Result<ModelMonitor::BatchReport> ModelMonitor::Observe(
    const data::DataFrame& serving) {
  const common::telemetry::TraceSpan span("monitor.observe");
  if (model_ == nullptr) {
    return common::Status::FailedPrecondition(
        "frame Observe on a proba-only monitor (no black box attached); "
        "feed precomputed probabilities through the matrix overload");
  }
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model_->PredictProba(serving));
  BBV_ASSIGN_OR_RETURN(BatchReport report, Observe(probabilities));
  // Fold the model-inference time into the reported latency (the inner call
  // only timed featurization + forest inference).
  report.latency_seconds = span.ElapsedSeconds();
  if (!history_.empty()) {
    history_.back().latency_seconds = report.latency_seconds;
  }
  return report;
}

common::Result<ModelMonitor::BatchReport> ModelMonitor::Observe(
    const linalg::Matrix& probabilities) {
  const common::telemetry::TraceSpan span("monitor.observe_from_proba");
  if (probabilities.rows() == 0) {
    return common::Status::InvalidArgument("empty serving batch");
  }
  if (windowed()) {
    // The sketch ring treats non-finite input as a programming error; a
    // serving stream must degrade recoverably, so reject it up front.
    for (size_t i = 0; i < probabilities.rows(); ++i) {
      const double* row = probabilities.RowData(i);
      for (size_t k = 0; k < probabilities.cols(); ++k) {
        if (!std::isfinite(row[k])) {
          common::telemetry::IncrementCounter("monitor.nonfinite_inputs");
          return common::Status::InvalidArgument(
              "serving batch contains a non-finite probability at row " +
              std::to_string(i));
        }
      }
    }
  }
  BBV_ASSIGN_OR_RETURN(ScoreEstimate estimate,
                       predictor_->EstimateScoreFromProba(probabilities));
  if (!std::isfinite(estimate.point)) {
    // Never let NaN/Inf flow into reports, history or alarm decisions.
    common::telemetry::IncrementCounter("monitor.nonfinite_estimates");
    return common::Status::Internal(
        "performance predictor produced a non-finite estimate");
  }
  BatchReport report;
  report.rows = probabilities.rows();
  report.estimate = estimate;
  report.reference_score = predictor_->test_score();
  // The constructor guarantees a finite, strictly positive reference.
  report.relative_drop =
      (report.reference_score - estimate.point) / report.reference_score;
  report.certified_drop =
      (report.reference_score - estimate.hi) / report.reference_score;
  if (windowed()) {
    // Sketch this batch, merge it with the most recent window_batches - 1
    // retained banks, and alarm on the estimate over that merged summary —
    // recent traffic, not all-time aggregates. The ring is only committed
    // once the windowed estimate is known to be sound, so a failed batch
    // never pollutes the window.
    stats::QuantileSketch::Options sketch_options;
    sketch_options.resolution_bits = options_.sketch_resolution_bits;
    stats::QuantileSketchBank batch_bank(0, sketch_options);
    BBV_RETURN_NOT_OK(batch_bank.Observe(probabilities));
    stats::QuantileSketchBank merged = batch_bank;
    const size_t prior =
        std::min(window_.size(), options_.window_batches - 1);
    for (size_t i = window_.size() - prior; i < window_.size(); ++i) {
      BBV_RETURN_NOT_OK(merged.Merge(window_[i]));
    }
    const std::vector<double> window_features =
        merged.PercentileFeatures(predictor_->percentile_points());
    BBV_ASSIGN_OR_RETURN(
        ScoreEstimate windowed_estimate,
        predictor_->EstimateScoreFromStatistics(window_features));
    if (!std::isfinite(windowed_estimate.point)) {
      common::telemetry::IncrementCounter("monitor.nonfinite_estimates");
      return common::Status::Internal(
          "performance predictor produced a non-finite windowed estimate");
    }
    report.windowed_estimate = windowed_estimate;
    report.windowed_relative_drop =
        (report.reference_score - windowed_estimate.point) /
        report.reference_score;
    report.windowed_certified_drop =
        (report.reference_score - windowed_estimate.hi) /
        report.reference_score;
    report.window_batches_used = prior + 1;
    report.window_rows = merged.rows_observed();
    const double windowed_alarm_drop =
        options_.alarm_policy == AlarmPolicy::kCertifiedDrop
            ? report.windowed_certified_drop
            : report.windowed_relative_drop;
    report.alarm = windowed_alarm_drop >= options_.alarm_threshold;
    window_.push_back(std::move(batch_bank));
    while (window_.size() > options_.window_batches) {
      window_.pop_front();
      common::telemetry::IncrementCounter("monitor.window_evictions");
    }
  } else {
    const double alarm_drop =
        options_.alarm_policy == AlarmPolicy::kCertifiedDrop
            ? report.certified_drop
            : report.relative_drop;
    report.alarm = alarm_drop >= options_.alarm_threshold;
  }
  report.batch_id = batches_observed_++;
  if (report.alarm) {
    ++alarms_raised_;
    common::telemetry::IncrementCounter("monitor.alarms");
  }
  common::telemetry::IncrementCounter("monitor.batches");
  common::telemetry::IncrementCounter("monitor.rows", probabilities.rows());
  report.alarms_total = alarms_raised_;
  report.epoch = epoch_;
  report.estimate_calls_total =
      common::telemetry::ReadCounter("predictor.estimate.calls");
  report.latency_seconds = span.ElapsedSeconds();
  history_.push_back(report);
  if (history_.size() > options_.history_limit) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<ptrdiff_t>(
                                          history_.size() -
                                          options_.history_limit));
  }
  return report;
}

common::Status ModelMonitor::SwapPredictor(
    std::shared_ptr<const PerformancePredictor> predictor) {
  if (predictor == nullptr || !predictor->trained()) {
    return common::Status::FailedPrecondition(
        "SwapPredictor needs a trained performance predictor");
  }
  BBV_RETURN_NOT_OK(ValidatePredictorReference(*predictor));
  // Epoch boundary: the retained window sketches were served under the old
  // predictor's reference score; scoring them with the new predictor would
  // alarm against a reference they never ran under. Drop them so the first
  // post-swap report windows over exactly the batches of the new epoch.
  window_.clear();
  predictor_ = std::move(predictor);
  ++epoch_;
  common::telemetry::IncrementCounter("monitor.predictor_swaps");
  return common::Status::OK();
}

double ModelMonitor::AlarmRate() const {
  return batches_observed_ == 0
             ? 0.0
             : static_cast<double>(alarms_raised_) /
                   static_cast<double>(batches_observed_);
}

std::string ModelMonitor::Summary() const {
  std::ostringstream os;
  os << "ModelMonitor(" << name_ << "): " << batches_observed_
     << " batches observed, " << alarms_raised_ << " alarms (rate "
     << AlarmRate() << ")\n";
  os << "reference score: " << predictor_->test_score() << " (alarm at >= "
     << options_.alarm_threshold << " "
     << (options_.alarm_policy == AlarmPolicy::kCertifiedDrop
             ? "certified drop — the interval must cross"
             : "point-estimate drop")
     << ")\n";
  if (windowed()) {
    os << "sliding window: last " << options_.window_batches
       << " batches, sketched at 2^" << options_.sketch_resolution_bits
       << " cells per class";
    if (!history_.empty()) {
      const BatchReport& last = history_.back();
      os << "; current windowed estimate " << last.windowed_estimate.point
         << " [" << last.windowed_estimate.lo << ", "
         << last.windowed_estimate.hi << "] (" << last.window_batches_used
         << " batches, " << last.window_rows << " rows)";
    }
    os << "\n";
  }
  if (!history_.empty()) {
    std::vector<double> estimates;
    std::vector<double> widths;
    std::vector<double> latencies;
    estimates.reserve(history_.size());
    widths.reserve(history_.size());
    latencies.reserve(history_.size());
    for (const BatchReport& report : history_) {
      estimates.push_back(report.estimate.point);
      widths.push_back(report.estimate.width());
      latencies.push_back(report.latency_seconds);
    }
    // One sort per metric family, arbitrarily many quantiles after.
    const stats::SortedView estimate_view(std::move(estimates));
    os << "recent estimates (" << history_.size()
       << " batches): p5=" << estimate_view.Percentile(5.0)
       << " median=" << estimate_view.Median()
       << " p95=" << estimate_view.Percentile(95.0) << "\n";
    const stats::SortedView width_view(std::move(widths));
    os << "interval width (coverage "
       << history_.back().estimate.coverage_level
       << "): p50=" << width_view.Median()
       << " p95=" << width_view.Percentile(95.0) << "\n";
    const stats::SortedView latency_view(std::move(latencies));
    os << "batch latency: p50=" << latency_view.Median() * 1e3
       << "ms p95=" << latency_view.Percentile(95.0) * 1e3
       << "ms max=" << latency_view.Max() * 1e3 << "ms\n";
  }
  return os.str();
}

std::string ModelMonitor::ExportJson() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "  \"monitor\": {\n";
  os << "    \"model\": \"" << name_ << "\",\n";
  os << "    \"reference_score\": " << predictor_->test_score() << ",\n";
  os << "    \"alarm_threshold\": " << options_.alarm_threshold << ",\n";
  os << "    \"alarm_policy\": \""
     << (options_.alarm_policy == AlarmPolicy::kCertifiedDrop
             ? "certified_drop"
             : "point_drop")
     << "\",\n";
  os << "    \"coverage_level\": " << predictor_->coverage_level() << ",\n";
  os << "    \"history_limit\": " << options_.history_limit << ",\n";
  // Windowed configuration only when a window exists: a classic monitor
  // used to emit "window_batches": 0, which read as a degenerate 0-batch
  // window instead of "not windowed".
  if (windowed()) {
    os << "    \"window_batches\": " << options_.window_batches << ",\n";
  }
  os << "    \"predictor_epoch\": " << epoch_ << ",\n";
  os << "    \"batches_observed\": " << batches_observed_ << ",\n";
  os << "    \"alarms_raised\": " << alarms_raised_ << ",\n";
  os << "    \"alarm_rate\": " << AlarmRate() << ",\n";
  os << "    \"history\": [\n";
  for (size_t i = 0; i < history_.size(); ++i) {
    const BatchReport& report = history_[i];
    os << "      {\"batch_id\": " << report.batch_id
       << ", \"rows\": " << report.rows
       << ", \"estimated_score\": " << report.estimate.point
       << ", \"estimate_lo\": " << report.estimate.lo
       << ", \"estimate_hi\": " << report.estimate.hi
       << ", \"estimate_width\": " << report.estimate.width()
       << ", \"coverage_level\": " << report.estimate.coverage_level
       << ", \"relative_drop\": " << report.relative_drop
       << ", \"certified_drop\": " << report.certified_drop
       << ", \"alarm\": " << (report.alarm ? "true" : "false")
       << ", \"latency_seconds\": " << report.latency_seconds
       << ", \"estimate_calls_total\": " << report.estimate_calls_total
       << ", \"alarms_total\": " << report.alarms_total
       << ", \"epoch\": " << report.epoch;
    if (windowed()) {
      os << ", \"windowed_estimate\": " << report.windowed_estimate.point
         << ", \"windowed_lo\": " << report.windowed_estimate.lo
         << ", \"windowed_hi\": " << report.windowed_estimate.hi
         << ", \"windowed_relative_drop\": " << report.windowed_relative_drop
         << ", \"windowed_certified_drop\": "
         << report.windowed_certified_drop
         << ", \"window_batches_used\": " << report.window_batches_used
         << ", \"window_rows\": " << report.window_rows;
    }
    os << "}" << (i + 1 < history_.size() ? "," : "") << "\n";
  }
  os << "    ]\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

}  // namespace bbv::core
