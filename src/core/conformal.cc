#include "core/conformal.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace bbv::core {

common::Result<ConformalCalibrator> ConformalCalibrator::Calibrate(
    Mode mode, std::span<const double> truths,
    std::span<const double> predictions, std::span<const double> spreads) {
  if (truths.empty()) {
    return common::Status::InvalidArgument(
        "conformal calibration needs at least one out-of-fold pair");
  }
  if (predictions.size() != truths.size()) {
    return common::Status::InvalidArgument(
        "calibration truths and predictions disagree on the number of "
        "examples");
  }
  const bool scaled = mode == Mode::kQuantileForest;
  if (scaled && spreads.size() != truths.size()) {
    return common::Status::InvalidArgument(
        "quantile-forest calibration needs one tree spread per example");
  }
  ConformalCalibrator calibrator;
  calibrator.mode_ = mode;
  calibrator.scores_.reserve(truths.size());
  for (size_t i = 0; i < truths.size(); ++i) {
    if (!std::isfinite(truths[i]) || !std::isfinite(predictions[i]) ||
        (scaled && !std::isfinite(spreads[i]))) {
      return common::Status::InvalidArgument(
          "non-finite calibration input at example " + std::to_string(i));
    }
    double score = std::fabs(truths[i] - predictions[i]);
    if (scaled) score /= std::max(spreads[i], kSpreadFloor);
    calibrator.scores_.push_back(score);
  }
  // Canonical ascending order: the serialized state is a pure function of
  // the calibration multiset, independent of fold or thread scheduling.
  std::sort(calibrator.scores_.begin(), calibrator.scores_.end());
  return calibrator;
}

double ConformalCalibrator::QuantileAt(double coverage) const {
  BBV_CHECK(calibrated()) << "QuantileAt on an uncalibrated calibrator";
  BBV_CHECK(coverage > 0.0 && coverage < 1.0)
      << "coverage must lie in (0, 1), got " << coverage;
  const size_t n = scores_.size();
  // Finite-sample rank ceil((n + 1) * coverage); the +1 pays for the
  // serving draw itself. Ranks beyond n saturate at the largest score.
  const auto rank = static_cast<size_t>(
      std::ceil((static_cast<double>(n) + 1.0) * coverage));
  return scores_[std::min(rank, n) - 1];
}

ScoreEstimate ConformalCalibrator::Interval(double point, double spread,
                                            double coverage) const {
  if (!calibrated()) return ScoreEstimate::Degenerate(point);
  double radius = QuantileAt(coverage);
  if (mode_ == Mode::kQuantileForest) {
    radius *= std::max(spread, kSpreadFloor);
  }
  ScoreEstimate estimate;
  estimate.point = point;
  // Scores (accuracy, ROC AUC) live in [0, 1]; clamping the endpoints only
  // tightens the interval and never costs coverage. The point stays the
  // raw regressor output — the bytes-unchanged contract of `.point`.
  estimate.lo = std::clamp(point - radius, 0.0, 1.0);
  estimate.hi = std::clamp(point + radius, 0.0, 1.0);
  estimate.coverage_level = coverage;
  return estimate;
}

void ConformalCalibrator::Save(common::BinaryWriter& writer) const {
  writer.WriteInt32(static_cast<int32_t>(mode_));
  writer.WriteDoubleVector(scores_);
}

common::Result<ConformalCalibrator> ConformalCalibrator::Load(
    common::BinaryReader& reader) {
  BBV_ASSIGN_OR_RETURN(int32_t mode, reader.ReadInt32());
  if (mode < 0 || mode > static_cast<int32_t>(Mode::kQuantileForest)) {
    return common::Status::InvalidArgument("corrupt conformal mode");
  }
  ConformalCalibrator calibrator;
  calibrator.mode_ = static_cast<Mode>(mode);
  BBV_ASSIGN_OR_RETURN(calibrator.scores_, reader.ReadDoubleVector());
  // Calibration state is untrusted input at Load time: scores are absolute
  // (possibly scaled) residuals, so they must be finite, non-negative and
  // in canonical ascending order.
  for (size_t i = 0; i < calibrator.scores_.size(); ++i) {
    const double score = calibrator.scores_[i];
    if (!std::isfinite(score) || score < 0.0 ||
        (i > 0 && score < calibrator.scores_[i - 1])) {
      return common::Status::InvalidArgument(
          "corrupt conformal calibration scores");
    }
  }
  return calibrator;
}

}  // namespace bbv::core
