#ifndef BBV_CORE_PERFORMANCE_PREDICTOR_H_
#define BBV_CORE_PERFORMANCE_PREDICTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "common/rng.h"
#include "core/conformal.h"
#include "core/score_estimate.h"
#include "data/dataset.h"
#include "errors/error_gen.h"
#include "linalg/matrix.h"
#include "ml/black_box.h"
#include "ml/random_forest.h"

namespace bbv::core {

/// Which prediction-quality score L the predictor estimates.
enum class ScoreMetric {
  kAccuracy,
  kRocAuc,
};

/// Computes the chosen score of `probabilities` against `labels`.
double ComputeScore(ScoreMetric metric, const linalg::Matrix& probabilities,
                    const std::vector<int>& labels);

/// Row-index-view variant: score of the sub-batch `rows` of `probabilities`,
/// with `labels` indexed by full-matrix row id. Lets the subsampled
/// meta-training path score repetitions without materializing a sub-matrix
/// per draw.
double ComputeScore(ScoreMetric metric, const linalg::Matrix& probabilities,
                    const std::vector<size_t>& rows,
                    const std::vector<int>& labels);

/// The paper's core contribution (Algorithms 1 & 2): a regression model that
/// estimates a black box classifier's prediction quality on unseen,
/// unlabeled serving data from percentiles of the model's output
/// distribution. Trained on synthetically corrupted copies of the held-out
/// test set produced by user-specified error generators.
class PerformancePredictor {
 public:
  struct Options {
    /// Corrupted copies of D_test generated per error generator
    /// (the paper repeats corruption ~100 times per column/error combo).
    int corruptions_per_generator = 100;
    /// Clean (uncorrupted) copies mixed into the training set, covering the
    /// paper's p_err = 0 case.
    int clean_copies = 5;
    /// Percentile grid for the output statistics.
    std::vector<double> percentile_points;
    /// Score to predict.
    ScoreMetric metric = ScoreMetric::kAccuracy;
    /// When non-zero, every meta-training example is computed on a random
    /// row subset of this size instead of the full test set. Set this to
    /// the expected serving batch size so the output statistics carry the
    /// same sampling noise at training and serving time.
    size_t meta_batch_size = 0;
    /// Grid searched over the random forest's tree count with
    /// `cv_folds`-fold cross validation minimizing MAE (paper §4).
    std::vector<int> tree_count_grid = {25, 50, 100};
    int cv_folds = 5;
    /// Opt-in histogram (256-bin quantile) split search for every forest
    /// this predictor fits — the CV grid-search candidates and the final
    /// regressor. Cheapens per-tenant (re)training; results stay
    /// deterministic and thread-count independent, but are a bounded
    /// approximation of the exact split search (see TreeOptions).
    bool binned_split_search = false;
    /// Conformal calibration of the estimate intervals (ScoreEstimate
    /// lo/hi). When on, training runs an out-of-fold residual pass *after*
    /// the final regressor fit — the fitted forest (and hence every
    /// `.point`) is byte-for-byte what an uncalibrated train produces.
    /// Calibration is skipped (estimates stay degenerate) when there are
    /// fewer meta-training examples than calibration folds.
    bool conformal_calibration = true;
    /// Nonconformity mode: kSplitConformal for constant-width intervals,
    /// kQuantileForest for locally scaled ones (see ConformalCalibrator).
    ConformalCalibrator::Mode conformal_mode =
        ConformalCalibrator::Mode::kSplitConformal;
    /// Folds of the out-of-fold residual pass.
    int calibration_folds = 5;
    /// Nominal marginal coverage of the intervals the EstimateScore*
    /// surfaces return; explicit-coverage overloads exist for callers that
    /// sweep coverage levels.
    double coverage_level = 0.9;
  };

  PerformancePredictor() : PerformancePredictor(Options{}) {}
  explicit PerformancePredictor(Options options);

  /// Algorithm 1: corrupts `test` with every generator in `generators`,
  /// records (output percentiles, true score) pairs, and fits the random
  /// forest regressor. `model` must already be trained; `test` must be
  /// labeled and disjoint from the model's training data.
  common::Status Train(
      const ml::BlackBox& model, const data::Dataset& test,
      const std::vector<const errors::ErrorGen*>& generators,
      common::Rng& rng);

  /// Variant of Algorithm 1 for callers that already generated the
  /// (prediction statistics, score) pairs — e.g. the performance validator,
  /// which shares one corruption pass between itself and its internal
  /// predictor. `test_score` is the clean-test reference score l_test.
  common::Status TrainFromStatistics(
      const std::vector<std::vector<double>>& statistics,
      const std::vector<double>& scores, double test_score, common::Rng& rng);

  /// Algorithm 2: estimated score of `model` on the unlabeled serving
  /// batch, as a point with its conformal interval (degenerate when the
  /// predictor is uncalibrated). The interval sits at
  /// Options::coverage_level.
  common::Result<ScoreEstimate> EstimateScore(
      const ml::BlackBox& model, const data::DataFrame& serving) const;

  /// Estimated score from precomputed model outputs.
  common::Result<ScoreEstimate> EstimateScoreFromProba(
      const linalg::Matrix& probabilities) const;
  /// Explicit-coverage overload for callers sweeping coverage levels.
  common::Result<ScoreEstimate> EstimateScoreFromProba(
      const linalg::Matrix& probabilities, double coverage_level) const;

  /// One estimation-error measurement on a *labeled* serving frame: the
  /// model predicts `serving` once, and the shared probabilities feed both
  /// the estimate (Algorithm 2) and the true score against `labels`. This is
  /// the probe the adversarial corruption search maximizes
  /// (errors::CorruptionSearch::ErrorProbe — errors sits below core in the
  /// layering DAG, so the search takes this hook as a std::function instead
  /// of depending on the predictor).
  struct EstimationErrorProbe {
    /// Point estimate (== estimate.point, kept as a thin accessor so the
    /// committed adversarial fixtures replay bytes-unchanged).
    double estimated_score = 0.0;
    double actual_score = 0.0;
    /// |estimated - actual| — the quantity the search maximizes.
    double abs_error = 0.0;
    /// The full interval-carrying estimate behind estimated_score.
    ScoreEstimate estimate;
  };
  common::Result<EstimationErrorProbe> ProbeEstimationError(
      const ml::BlackBox& model, const data::DataFrame& serving,
      const std::vector<int>& labels) const;

  /// Estimated score from a precomputed percentile feature vector — the
  /// entry point for the streaming serving layer, whose mergeable sketches
  /// produce the same num_classes * percentile_points() features without
  /// retaining rows. Takes a span so callers hand over their statistics
  /// buffer without copying; `statistics` must match the feature dimension
  /// the regressor was trained on.
  common::Result<ScoreEstimate> EstimateScoreFromStatistics(
      std::span<const double> statistics) const;
  /// Explicit-coverage overload for callers sweeping coverage levels.
  common::Result<ScoreEstimate> EstimateScoreFromStatistics(
      std::span<const double> statistics, double coverage_level) const;

  /// Batch variant for the multi-tenant serving layer: one percentile
  /// feature row per pending request, all scored through a single
  /// ForestKernel batch call instead of one scalar walk per request.
  /// Bit-identical per row to EstimateScoreFromStatistics — the kernel's
  /// exact batch path accumulates trees in the same order as the scalar
  /// walk, and the interval is a pure function of the point (plus, in
  /// quantile-forest mode, the per-row tree spread, computed identically on
  /// both paths). `statistics` must have feature_dimension() columns and
  /// `out.size()` rows. The point-only overload is the serving fast path
  /// for consumers that do not read intervals.
  common::Status EstimateScoresFromStatistics(const linalg::Matrix& statistics,
                                              std::span<double> out) const;
  common::Status EstimateScoresFromStatistics(
      const linalg::Matrix& statistics, std::span<ScoreEstimate> out) const;

  /// Percentile grid the regressor's features are built on. Streaming
  /// consumers must query their sketches at exactly these points.
  const std::vector<double>& percentile_points() const {
    return options_.percentile_points;
  }

  /// Length of the percentile feature vector the regressor expects
  /// (num_classes * percentile grid size); 0 before training.
  size_t feature_dimension() const { return feature_dimension_; }

  /// Score the black box achieved on the clean held-out test set
  /// (the paper's l_test reference value).
  double test_score() const { return test_score_; }

  /// Number of (statistics, score) training pairs collected.
  size_t num_training_examples() const { return num_training_examples_; }

  /// Tree count selected by cross-validation.
  int selected_tree_count() const { return selected_tree_count_; }

  bool trained() const { return trained_; }

  /// The conformal calibration state (uncalibrated before training, or
  /// when Options::conformal_calibration is off / the meta-training set is
  /// too small for the fold pass).
  const ConformalCalibrator& calibrator() const { return calibrator_; }
  /// Coverage level the default EstimateScore* surfaces use.
  double coverage_level() const { return options_.coverage_level; }

  /// Persists the trained predictor (random forest, percentile grid, score
  /// metric, reference test score and conformal calibration state) so it
  /// can be deployed next to a serving system and reloaded without
  /// retraining.
  common::Status Save(std::ostream& out) const;
  static common::Result<PerformancePredictor> Load(std::istream& in);

 private:
  /// Out-of-fold residual pass feeding calibrator_; runs after the final
  /// regressor fit and on an internal fixed-seed Rng, so both the forest
  /// bytes and the caller's Rng stream are calibration-independent.
  common::Status CalibrateConformal(const linalg::Matrix& features,
                                    const std::vector<double>& scores);
  /// Inter-quartile range of the final forest's per-tree predictions for
  /// one feature row (the kQuantileForest difficulty signal).
  double TreeValueSpread(const double* row) const;
  /// Interval around a point prediction for the feature row `row` at the
  /// given coverage (row is only walked in quantile-forest mode).
  ScoreEstimate IntervalFor(double point, const double* row,
                            double coverage_level) const;

  Options options_;
  bool trained_ = false;
  double test_score_ = 0.0;
  size_t num_training_examples_ = 0;
  size_t feature_dimension_ = 0;
  int selected_tree_count_ = 0;
  ml::RandomForestRegressor regressor_;
  ConformalCalibrator calibrator_;
};

}  // namespace bbv::core

#endif  // BBV_CORE_PERFORMANCE_PREDICTOR_H_
