#include "core/prediction_statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace bbv::core {

std::vector<double> DefaultPercentilePoints() {
  // The paper's 0, 5, 10, ..., 100 grid, refined with extra points in both
  // tails: confident models (e.g. CNNs) concentrate nearly all output mass
  // at 0/1, so the informative signal lives in the extreme percentiles.
  std::vector<double> points = {1.0, 2.0, 3.0, 4.0};
  for (int q = 0; q <= 100; q += 5) {
    points.push_back(static_cast<double>(q));
  }
  points.insert(points.end(), {96.0, 97.0, 98.0, 99.0});
  std::sort(points.begin(), points.end());
  return points;
}

namespace {

/// Debug contract: every row of `probabilities` is a probability simplex —
/// entries in [0, 1] and summing to 1 within tolerance. Scans the whole
/// matrix, so it runs only under BBV_DCHECK.
bool RowsAreProbabilitySimplex(const linalg::Matrix& probabilities) {
  constexpr double kTolerance = 1e-6;
  for (size_t i = 0; i < probabilities.rows(); ++i) {
    double row_sum = 0.0;
    for (size_t k = 0; k < probabilities.cols(); ++k) {
      const double p = probabilities.At(i, k);
      if (!(p >= -kTolerance && p <= 1.0 + kTolerance)) return false;
      row_sum += p;
    }
    if (std::abs(row_sum - 1.0) > kTolerance * static_cast<double>(
                                                  probabilities.cols())) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<double> PredictionStatistics(
    const linalg::Matrix& probabilities,
    const std::vector<double>& percentile_points) {
  BBV_CHECK_GT(probabilities.rows(), 0u)
      << "PredictionStatistics on an empty batch";
  BBV_CHECK(!percentile_points.empty());
  BBV_DCHECK(std::is_sorted(percentile_points.begin(),
                            percentile_points.end()))
      << "percentile points must be ascending";
  BBV_DCHECK(percentile_points.front() >= 0.0 &&
             percentile_points.back() <= 100.0)
      << "percentile points must lie in [0, 100]";
  BBV_DCHECK(RowsAreProbabilitySimplex(probabilities))
      << "class-probability rows must lie on the probability simplex";
  std::vector<double> features;
  features.reserve(probabilities.cols() * percentile_points.size());
  for (size_t k = 0; k < probabilities.cols(); ++k) {
    // One sort per column; every percentile query hits the same view.
    const stats::SortedView column_view(probabilities.Col(k));
    const std::vector<double> column_percentiles =
        column_view.Percentiles(percentile_points);
    features.insert(features.end(), column_percentiles.begin(),
                    column_percentiles.end());
  }
  BBV_DCHECK(std::all_of(features.begin(), features.end(),
                         [](double v) { return std::isfinite(v); }))
      << "percentile feature vector contains NaN/Inf";
  return features;
}

std::vector<double> PredictionStatistics(
    const linalg::Matrix& probabilities, const std::vector<size_t>& rows,
    const std::vector<double>& percentile_points) {
  BBV_CHECK(!rows.empty()) << "PredictionStatistics on an empty row view";
  BBV_CHECK(!percentile_points.empty());
  BBV_DCHECK(std::all_of(rows.begin(), rows.end(),
                         [&](size_t row) { return row < probabilities.rows(); }))
      << "row view index out of range";
  std::vector<double> features;
  features.reserve(probabilities.cols() * percentile_points.size());
  std::vector<double> column_values(rows.size());
  for (size_t k = 0; k < probabilities.cols(); ++k) {
    for (size_t i = 0; i < rows.size(); ++i) {
      column_values[i] = probabilities.At(rows[i], k);
    }
    const stats::SortedView column_view(column_values);
    const std::vector<double> column_percentiles =
        column_view.Percentiles(percentile_points);
    features.insert(features.end(), column_percentiles.begin(),
                    column_percentiles.end());
  }
  BBV_DCHECK(std::all_of(features.begin(), features.end(),
                         [](double v) { return std::isfinite(v); }))
      << "percentile feature vector contains NaN/Inf";
  return features;
}

}  // namespace bbv::core
