#include "core/prediction_statistics.h"

#include <algorithm>

#include "common/check.h"
#include "stats/descriptive.h"

namespace bbv::core {

std::vector<double> DefaultPercentilePoints() {
  // The paper's 0, 5, 10, ..., 100 grid, refined with extra points in both
  // tails: confident models (e.g. CNNs) concentrate nearly all output mass
  // at 0/1, so the informative signal lives in the extreme percentiles.
  std::vector<double> points = {1.0, 2.0, 3.0, 4.0};
  for (int q = 0; q <= 100; q += 5) {
    points.push_back(static_cast<double>(q));
  }
  points.insert(points.end(), {96.0, 97.0, 98.0, 99.0});
  std::sort(points.begin(), points.end());
  return points;
}

std::vector<double> PredictionStatistics(
    const linalg::Matrix& probabilities,
    const std::vector<double>& percentile_points) {
  BBV_CHECK_GT(probabilities.rows(), 0u)
      << "PredictionStatistics on an empty batch";
  BBV_CHECK(!percentile_points.empty());
  std::vector<double> features;
  features.reserve(probabilities.cols() * percentile_points.size());
  for (size_t k = 0; k < probabilities.cols(); ++k) {
    const std::vector<double> column_percentiles =
        stats::Percentiles(probabilities.Col(k), percentile_points);
    features.insert(features.end(), column_percentiles.begin(),
                    column_percentiles.end());
  }
  return features;
}

}  // namespace bbv::core
