#include "core/performance_validator.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/prediction_statistics.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "stats/hypothesis.h"

namespace bbv::core {

namespace {

/// The validator only ever consumes the internal predictor's point
/// estimate (BuildFeatures / the degenerate fallback), so the conformal
/// calibration pass — five extra fold refits per Train — would be pure
/// cost here. Keep it off.
PerformancePredictor::Options WithoutCalibration(
    PerformancePredictor::Options options) {
  options.conformal_calibration = false;
  return options;
}

}  // namespace

PerformanceValidator::PerformanceValidator(Options options)
    : options_(std::move(options)),
      predictor_(WithoutCalibration(options_.predictor)) {
  if (options_.percentile_points.empty()) {
    options_.percentile_points = DefaultPercentilePoints();
  }
  BBV_CHECK(options_.threshold > 0.0 && options_.threshold < 1.0);
}

common::Status PerformanceValidator::Train(
    const ml::BlackBox& model, const data::Dataset& test,
    const std::vector<const errors::ErrorGen*>& generators,
    common::Rng& rng) {
  const common::telemetry::TraceSpan span("validator.train");
  common::telemetry::IncrementCounter("validator.train.calls");
  if (test.NumRows() == 0) {
    return common::Status::InvalidArgument("empty test dataset");
  }
  if (generators.empty()) {
    return common::Status::InvalidArgument(
        "need at least one error generator");
  }
  BBV_ASSIGN_OR_RETURN(linalg::Matrix clean_probabilities,
                       model.PredictProba(test.features));
  test_score_ =
      ComputeScore(options_.metric, clean_probabilities, test.labels);

  // Split the test rows into a KS-reference half and a meta-example half.
  // At validation time the serving batch is disjoint from the retained
  // reference outputs, so the meta-examples must be disjoint from them too
  // — otherwise the training-time KS statistics are biased low (overlapping
  // samples) and every real serving batch looks shifted.
  std::vector<size_t> shuffled_rows = rng.Permutation(test.NumRows());
  const size_t reference_count = test.NumRows() / 2;
  const std::vector<size_t> reference_rows(
      shuffled_rows.begin(),
      shuffled_rows.begin() + static_cast<ptrdiff_t>(reference_count));
  const std::vector<size_t> example_rows(
      shuffled_rows.begin() + static_cast<ptrdiff_t>(reference_count),
      shuffled_rows.end());
  if (example_rows.empty() || reference_rows.empty()) {
    return common::Status::InvalidArgument(
        "test dataset too small to split into reference and example halves");
  }
  test_probabilities_ = clean_probabilities.SelectRows(reference_rows);

  // One corruption pass shared between the internal performance predictor
  // and the validator's decision model. The passes are independent, so they
  // fan out over the shared thread pool with one pre-forked Rng per task;
  // results land in per-task slots, keeping training bit-identical at every
  // thread count.
  const size_t batch_size =
      options_.meta_batch_size > 0
          ? std::min(options_.meta_batch_size, example_rows.size())
          : example_rows.size();
  std::vector<const errors::ErrorGen*> task_generators;
  for (int c = 0; c < options_.clean_copies; ++c) {
    task_generators.push_back(nullptr);  // clean copy
  }
  for (const errors::ErrorGen* generator : generators) {
    BBV_CHECK(generator != nullptr);
    for (int repetition = 0; repetition < options_.corruptions_per_generator;
         ++repetition) {
      task_generators.push_back(generator);
    }
  }
  std::vector<common::Rng> task_rngs = rng.ForkStreams(task_generators.size());
  std::vector<linalg::Matrix> probability_batches(task_generators.size());
  std::vector<std::vector<double>> statistics_rows(task_generators.size());
  std::vector<double> scores(task_generators.size());
  BBV_RETURN_NOT_OK(common::ParallelFor(
      task_generators.size(), [&](size_t task) -> common::Status {
        common::Rng& task_rng = task_rngs[task];
        const linalg::Matrix* probabilities = &clean_probabilities;
        linalg::Matrix corrupted_probabilities;
        if (task_generators[task] != nullptr) {
          BBV_ASSIGN_OR_RETURN(
              data::DataFrame corrupted,
              task_generators[task]->Corrupt(test.features, task_rng));
          BBV_ASSIGN_OR_RETURN(corrupted_probabilities,
                               model.PredictProba(corrupted));
          probabilities = &corrupted_probabilities;
        }
        // Pick the meta-example rows from the example half only.
        std::vector<size_t> rows = example_rows;
        if (batch_size < example_rows.size()) {
          const std::vector<size_t> picks =
              task_rng.SampleWithoutReplacement(example_rows.size(),
                                                batch_size);
          rows.clear();
          rows.reserve(batch_size);
          for (size_t pick : picks) rows.push_back(example_rows[pick]);
        }
        // The batch is materialized because BuildFeatures later runs
        // per-class KS tests against its columns; statistics and score use
        // the row view.
        statistics_rows[task] = PredictionStatistics(
            *probabilities, rows, options_.percentile_points);
        scores[task] =
            ComputeScore(options_.metric, *probabilities, rows, test.labels);
        probability_batches[task] = probabilities->SelectRows(rows);
        return common::Status::OK();
      }));

  BBV_RETURN_NOT_OK(predictor_.TrainFromStatistics(statistics_rows, scores,
                                                   test_score_, rng));

  // Meta-labels: 1 = quality within the threshold, 0 = violation.
  std::vector<int> labels(scores.size());
  const double floor = (1.0 - options_.threshold) * test_score_;
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = scores[i] >= floor ? 1 : 0;
  }

  std::vector<std::vector<double>> feature_rows;
  feature_rows.reserve(probability_batches.size());
  for (const linalg::Matrix& probabilities : probability_batches) {
    feature_rows.push_back(BuildFeatures(probabilities));
  }

  const bool has_ok =
      std::any_of(labels.begin(), labels.end(), [](int l) { return l == 1; });
  const bool has_violation =
      std::any_of(labels.begin(), labels.end(), [](int l) { return l == 0; });
  if (!has_ok || !has_violation) {
    // All corrupted copies fell on one side of the threshold; fall back to
    // thresholding the internal predictor's estimate at inference time.
    degenerate_ = true;
    degenerate_label_ = has_ok ? 1 : 0;
    trained_ = true;
    return common::Status::OK();
  }

  decision_model_ = ml::GradientBoostedTrees(options_.gbdt);
  BBV_RETURN_NOT_OK(decision_model_.Fit(linalg::Matrix::FromRows(feature_rows),
                                        labels, 2, rng));

  // Calibrate the decision operating point with out-of-fold predictions:
  // pick the P(ok) cutoff that maximizes the F1 of the alarm class. The
  // in-sample fit is near-perfect (any cutoff looks optimal), so we collect
  // honest probabilities from k-fold refits first. This corrects the class
  // imbalance at loose thresholds, where few corrupted copies violate.
  const linalg::Matrix meta_features = linalg::Matrix::FromRows(feature_rows);
  std::vector<double> oof_p_ok(labels.size(), 0.5);
  const int folds = 3;
  if (labels.size() >= 2 * folds) {
    const std::vector<ml::Fold> splits =
        ml::KFoldIndices(labels.size(), folds, rng);
    // Fold refits are independent and write disjoint oof_p_ok slots, so
    // they run concurrently, each on its own pre-forked stream.
    std::vector<common::Rng> fold_rngs = rng.ForkStreams(splits.size());
    BBV_RETURN_NOT_OK(common::ParallelFor(
        splits.size(), [&](size_t f) -> common::Status {
          const ml::Fold& fold = splits[f];
          std::vector<int> fold_labels;
          fold_labels.reserve(fold.train_rows.size());
          for (size_t row : fold.train_rows) fold_labels.push_back(labels[row]);
          const bool fold_has_both =
              std::any_of(fold_labels.begin(), fold_labels.end(),
                          [](int l) { return l == 0; }) &&
              std::any_of(fold_labels.begin(), fold_labels.end(),
                          [](int l) { return l == 1; });
          if (!fold_has_both) return common::Status::OK();
          ml::GradientBoostedTrees fold_model(options_.gbdt);
          BBV_RETURN_NOT_OK(fold_model.Fit(
              meta_features.SelectRows(fold.train_rows), fold_labels, 2,
              fold_rngs[f]));
          const linalg::Matrix fold_decisions = fold_model.PredictProba(
              meta_features.SelectRows(fold.test_rows));
          for (size_t i = 0; i < fold.test_rows.size(); ++i) {
            oof_p_ok[fold.test_rows[i]] = fold_decisions.At(i, 1);
          }
          return common::Status::OK();
        }));
  }
  std::vector<int> alarm_truth(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    alarm_truth[i] = labels[i] == 0 ? 1 : 0;
  }
  double best_f1 = -1.0;
  double best_cut = 0.5;
  for (int step = 1; step <= 19; ++step) {
    const double cut = 0.05 * static_cast<double>(step);
    std::vector<int> alarm_predictions(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      alarm_predictions[i] = oof_p_ok[i] >= cut ? 0 : 1;
    }
    const double f1 = ml::F1Score(alarm_predictions, alarm_truth);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_cut = cut;
    }
  }
  decision_threshold_ = best_cut;
  trained_ = true;
  return common::Status::OK();
}

std::vector<double> PerformanceValidator::BuildFeatures(
    const linalg::Matrix& probabilities) const {
  std::vector<double> features =
      PredictionStatistics(probabilities, options_.percentile_points);
  // Hypothesis-test features: per-class two-sample KS between the batch
  // outputs and the retained clean test outputs [13].
  if (options_.use_ks_features) {
    for (size_t k = 0; k < probabilities.cols(); ++k) {
      const stats::TestResult ks = stats::TwoSampleKsTest(
          probabilities.Col(k), test_probabilities_.Col(k));
      features.push_back(ks.statistic);
      features.push_back(ks.p_value);
    }
  }
  // The internal performance predictor's estimate and the implied relative
  // drop against the clean test score.
  if (options_.use_predictor_feature) {
    const auto estimate = predictor_.EstimateScoreFromProba(probabilities);
    const double estimated_score =
        estimate.ok() ? estimate->point : test_score_;
    features.push_back(estimated_score);
    features.push_back(test_score_ > 0.0
                           ? (test_score_ - estimated_score) / test_score_
                           : 0.0);
  }
  return features;
}

common::Result<bool> PerformanceValidator::Validate(
    const ml::BlackBox& model, const data::DataFrame& serving) const {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model.PredictProba(serving));
  return ValidateFromProba(probabilities);
}

common::Result<bool> PerformanceValidator::ValidateFromProba(
    const linalg::Matrix& probabilities) const {
  const common::telemetry::TraceSpan span("validator.validate");
  if (!trained_) {
    return common::Status::FailedPrecondition("Validate before Train");
  }
  common::telemetry::IncrementCounter("validator.validate.calls");
  bool verdict = false;
  if (degenerate_) {
    // Decision via the predictor estimate against the threshold.
    BBV_ASSIGN_OR_RETURN(ScoreEstimate estimate,
                         predictor_.EstimateScoreFromProba(probabilities));
    verdict = estimate.point >= (1.0 - options_.threshold) * test_score_;
  } else {
    const std::vector<double> features = BuildFeatures(probabilities);
    const linalg::Matrix decision = decision_model_.PredictProba(
        linalg::Matrix(1, features.size(), features));
    verdict = decision.At(0, 1) >= decision_threshold_;
  }
  if (!verdict) common::telemetry::IncrementCounter("validator.rejections");
  return verdict;
}

}  // namespace bbv::core

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace bbv::core {

namespace {
constexpr char kValidatorMagic[] = "BBVPV";
constexpr uint32_t kValidatorVersion = 1;
}  // namespace

common::Status PerformanceValidator::Save(std::ostream& out) const {
  if (!trained_) {
    return common::Status::FailedPrecondition("Save before Train");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kValidatorMagic, kValidatorVersion);
  writer.WriteDouble(options_.threshold);
  writer.WriteInt32(static_cast<int32_t>(options_.metric));
  writer.WriteDoubleVector(options_.percentile_points);
  writer.WriteInt32(options_.use_ks_features ? 1 : 0);
  writer.WriteInt32(options_.use_predictor_feature ? 1 : 0);
  writer.WriteDouble(test_score_);
  writer.WriteInt32(degenerate_ ? 1 : 0);
  writer.WriteInt32(degenerate_label_);
  writer.WriteDouble(decision_threshold_);
  writer.WriteUint64(test_probabilities_.rows());
  writer.WriteUint64(test_probabilities_.cols());
  writer.WriteDoubleVector(test_probabilities_.data());
  BBV_RETURN_NOT_OK(writer.status());
  BBV_RETURN_NOT_OK(predictor_.Save(out));
  if (!degenerate_) {
    BBV_RETURN_NOT_OK(decision_model_.Save(out));
  }
  return writer.status();
}

common::Result<PerformanceValidator> PerformanceValidator::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kValidatorMagic, kValidatorVersion));
  Options options;
  BBV_ASSIGN_OR_RETURN(options.threshold, reader.ReadDouble());
  if (options.threshold <= 0.0 || options.threshold >= 1.0) {
    return common::Status::InvalidArgument("corrupt threshold");
  }
  BBV_ASSIGN_OR_RETURN(int32_t metric, reader.ReadInt32());
  if (metric < 0 || metric > static_cast<int32_t>(ScoreMetric::kRocAuc)) {
    return common::Status::InvalidArgument("corrupt score metric");
  }
  options.metric = static_cast<ScoreMetric>(metric);
  BBV_ASSIGN_OR_RETURN(options.percentile_points, reader.ReadDoubleVector());
  if (options.percentile_points.empty()) {
    return common::Status::InvalidArgument("corrupt percentile grid");
  }
  BBV_ASSIGN_OR_RETURN(int32_t use_ks, reader.ReadInt32());
  options.use_ks_features = use_ks != 0;
  BBV_ASSIGN_OR_RETURN(int32_t use_predictor, reader.ReadInt32());
  options.use_predictor_feature = use_predictor != 0;

  PerformanceValidator validator(options);
  BBV_ASSIGN_OR_RETURN(validator.test_score_, reader.ReadDouble());
  BBV_ASSIGN_OR_RETURN(int32_t degenerate, reader.ReadInt32());
  validator.degenerate_ = degenerate != 0;
  BBV_ASSIGN_OR_RETURN(validator.degenerate_label_, reader.ReadInt32());
  BBV_ASSIGN_OR_RETURN(validator.decision_threshold_, reader.ReadDouble());
  BBV_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(uint64_t cols, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(std::vector<double> values,
                       reader.ReadDoubleVector());
  if (values.size() != rows * cols) {
    return common::Status::InvalidArgument("corrupt retained test outputs");
  }
  validator.test_probabilities_ =
      linalg::Matrix(rows, cols, std::move(values));
  BBV_ASSIGN_OR_RETURN(validator.predictor_,
                       PerformancePredictor::Load(in));
  if (!validator.degenerate_) {
    BBV_ASSIGN_OR_RETURN(validator.decision_model_,
                         ml::GradientBoostedTrees::Load(in));
  }
  validator.trained_ = true;
  return validator;
}

}  // namespace bbv::core
