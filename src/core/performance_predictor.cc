#include "core/performance_predictor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/prediction_statistics.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "stats/descriptive.h"

namespace bbv::core {

double ComputeScore(ScoreMetric metric, const linalg::Matrix& probabilities,
                    const std::vector<int>& labels) {
  switch (metric) {
    case ScoreMetric::kAccuracy:
      return ml::AccuracyFromProba(probabilities, labels);
    case ScoreMetric::kRocAuc:
      return ml::RocAucFromProba(probabilities, labels);
  }
  BBV_CHECK(false) << "unreachable";
  return 0.0;
}

double ComputeScore(ScoreMetric metric, const linalg::Matrix& probabilities,
                    const std::vector<size_t>& rows,
                    const std::vector<int>& labels) {
  switch (metric) {
    case ScoreMetric::kAccuracy:
      return ml::AccuracyFromProba(probabilities, rows, labels);
    case ScoreMetric::kRocAuc:
      return ml::RocAucFromProba(probabilities, rows, labels);
  }
  BBV_CHECK(false) << "unreachable";
  return 0.0;
}

PerformancePredictor::PerformancePredictor(Options options)
    : options_(std::move(options)) {
  if (options_.percentile_points.empty()) {
    options_.percentile_points = DefaultPercentilePoints();
  }
}

common::Status PerformancePredictor::Train(
    const ml::BlackBox& model, const data::Dataset& test,
    const std::vector<const errors::ErrorGen*>& generators,
    common::Rng& rng) {
  const common::telemetry::TraceSpan span("predictor.train");
  common::telemetry::IncrementCounter("predictor.train.calls");
  if (test.NumRows() == 0) {
    return common::Status::InvalidArgument("empty test dataset");
  }
  if (generators.empty()) {
    return common::Status::InvalidArgument(
        "need at least one error generator");
  }

  // Score on the clean test data (line 2 of Algorithm 1).
  BBV_ASSIGN_OR_RETURN(linalg::Matrix clean_probabilities,
                       model.PredictProba(test.features));
  test_score_ = ComputeScore(options_.metric, clean_probabilities, test.labels);

  // Collect the meta-training set M (lines 3-12). Every corrupt → predict →
  // score pass is independent, so the collection fans out over the shared
  // thread pool: one pre-forked Rng per task keeps the collected set (and
  // hence the serialized model) bit-identical at every thread count.
  const bool subsample = options_.meta_batch_size > 0 &&
                         options_.meta_batch_size < test.NumRows();
  std::vector<const errors::ErrorGen*> task_generators;
  for (int c = 0; c < options_.clean_copies; ++c) {
    task_generators.push_back(nullptr);  // clean copy
  }
  for (const errors::ErrorGen* generator : generators) {
    BBV_CHECK(generator != nullptr);
    for (int repetition = 0; repetition < options_.corruptions_per_generator;
         ++repetition) {
      task_generators.push_back(generator);
    }
  }
  common::telemetry::IncrementCounter("predictor.meta_examples",
                                      task_generators.size());
  std::vector<common::Rng> task_rngs = rng.ForkStreams(task_generators.size());
  std::vector<std::vector<double>> feature_rows(task_generators.size());
  std::vector<double> scores(task_generators.size());
  BBV_RETURN_NOT_OK(common::ParallelFor(
      task_generators.size(), [&](size_t task) -> common::Status {
        common::Rng& task_rng = task_rngs[task];
        const linalg::Matrix* probabilities = &clean_probabilities;
        linalg::Matrix corrupted_probabilities;
        if (task_generators[task] != nullptr) {
          BBV_ASSIGN_OR_RETURN(
              data::DataFrame corrupted,
              task_generators[task]->Corrupt(test.features, task_rng));
          BBV_ASSIGN_OR_RETURN(corrupted_probabilities,
                               model.PredictProba(corrupted));
          probabilities = &corrupted_probabilities;
        }
        if (subsample) {
          // Row-index view: no per-repetition sub-matrix/label copies.
          const std::vector<size_t> rows = task_rng.SampleWithoutReplacement(
              test.NumRows(), options_.meta_batch_size);
          feature_rows[task] = PredictionStatistics(
              *probabilities, rows, options_.percentile_points);
          scores[task] =
              ComputeScore(options_.metric, *probabilities, rows, test.labels);
        } else {
          feature_rows[task] = PredictionStatistics(
              *probabilities, options_.percentile_points);
          scores[task] =
              ComputeScore(options_.metric, *probabilities, test.labels);
        }
        return common::Status::OK();
      }));
  return TrainFromStatistics(feature_rows, scores, test_score_, rng);
}

common::Status PerformancePredictor::TrainFromStatistics(
    const std::vector<std::vector<double>>& statistics,
    const std::vector<double>& scores, double test_score, common::Rng& rng) {
  if (statistics.size() != scores.size()) {
    return common::Status::InvalidArgument(
        "statistics and scores disagree on the number of examples");
  }
  if (statistics.empty()) {
    return common::Status::InvalidArgument("no meta-training examples");
  }
  test_score_ = test_score;
  const linalg::Matrix features = linalg::Matrix::FromRows(statistics);
  num_training_examples_ = scores.size();
  feature_dimension_ = features.cols();

  // Grid search over the number of trees with k-fold CV on MAE (line 13;
  // paper §4 trains a RandomForestRegressor with five-fold CV).
  BBV_CHECK(!options_.tree_count_grid.empty());
  int best_trees = options_.tree_count_grid.front();
  double best_mae = -1.0;
  if (options_.tree_count_grid.size() > 1 &&
      scores.size() >= static_cast<size_t>(options_.cv_folds)) {
    for (int tree_count : options_.tree_count_grid) {
      const bool binned = options_.binned_split_search;
      auto factory = [tree_count, binned]() {
        ml::RandomForestRegressor::Options forest_options;
        forest_options.num_trees = tree_count;
        forest_options.tree.binned_split_search = binned;
        return ml::RandomForestRegressor(forest_options);
      };
      BBV_ASSIGN_OR_RETURN(
          double mae,
          ml::CrossValRegressionMae(factory, features, scores,
                                    options_.cv_folds, rng));
      if (best_mae < 0.0 || mae < best_mae) {
        best_mae = mae;
        best_trees = tree_count;
      }
    }
  }
  selected_tree_count_ = best_trees;

  ml::RandomForestRegressor::Options forest_options;
  forest_options.num_trees = best_trees;
  forest_options.tree.binned_split_search = options_.binned_split_search;
  regressor_ = ml::RandomForestRegressor(forest_options);
  BBV_RETURN_NOT_OK(regressor_.Fit(features, scores, rng));
  // The conformal pass runs strictly AFTER the final fit and on its own
  // internal Rng: it neither perturbs the Rng draws the forest consumed nor
  // advances the caller's stream, so the regressor, every `.point`
  // downstream (including the committed adversarial-search probe fixtures),
  // and every later draw from `rng` are byte-identical whether calibration
  // is on or off.
  calibrator_ = ConformalCalibrator();
  if (options_.conformal_calibration && options_.calibration_folds >= 2 &&
      scores.size() >= static_cast<size_t>(options_.calibration_folds)) {
    BBV_RETURN_NOT_OK(CalibrateConformal(features, scores));
  }
  trained_ = true;
  return common::Status::OK();
}

common::Status PerformancePredictor::CalibrateConformal(
    const linalg::Matrix& features, const std::vector<double>& scores) {
  const common::telemetry::TraceSpan span("predictor.calibrate");
  const bool scaled =
      options_.conformal_mode == ConformalCalibrator::Mode::kQuantileForest;
  // Fixed-seed internal stream, deliberately NOT the training Rng: drawing
  // the fold permutation from the caller's stream would shift every Rng
  // consumer downstream of Train, breaking seed-pinned fixtures and replays
  // that predate calibration. The fold split only needs to be deterministic,
  // which a constant seed plus the example count provides.
  common::Rng rng(0xC0'4F'0B'A1ull + scores.size());
  const std::vector<ml::Fold> folds = ml::KFoldIndices(
      scores.size(), options_.calibration_folds, rng);
  // Fold refits are independent and write disjoint slots; one pre-forked
  // stream per fold keeps the residual multiset — and hence the canonical
  // sorted calibration state — byte-identical at every BBV_THREADS.
  std::vector<common::Rng> fold_rngs = rng.ForkStreams(folds.size());
  std::vector<std::vector<double>> fold_predictions(folds.size());
  std::vector<std::vector<double>> fold_spreads(folds.size());
  BBV_RETURN_NOT_OK(common::ParallelFor(
      folds.size(), [&](size_t f) -> common::Status {
        const ml::Fold& fold = folds[f];
        const linalg::Matrix train_x = features.SelectRows(fold.train_rows);
        const linalg::Matrix test_x = features.SelectRows(fold.test_rows);
        std::vector<double> train_y;
        train_y.reserve(fold.train_rows.size());
        for (size_t row : fold.train_rows) train_y.push_back(scores[row]);
        ml::RandomForestRegressor::Options forest_options;
        forest_options.num_trees = selected_tree_count_;
        forest_options.tree.binned_split_search =
            options_.binned_split_search;
        ml::RandomForestRegressor fold_model(forest_options);
        BBV_RETURN_NOT_OK(fold_model.Fit(train_x, train_y, fold_rngs[f]));
        fold_predictions[f].resize(fold.test_rows.size());
        fold_model.PredictInto(test_x, fold_predictions[f]);
        if (scaled) {
          // Difficulty scale from the FINAL forest, not the fold model: the
          // normalized-conformal guarantee needs one fixed sigma(x) shared
          // between calibration and serving, and fold forests (fit on a 1 -
          // 1/folds fraction) have systematically wider tree spreads, which
          // would deflate every calibration score and undercover at serving
          // time. Residuals above stay honest (out-of-fold) regardless.
          fold_spreads[f].reserve(fold.test_rows.size());
          for (size_t i = 0; i < fold.test_rows.size(); ++i) {
            fold_spreads[f].push_back(TreeValueSpread(test_x.RowData(i)));
          }
        }
        return common::Status::OK();
      }));
  // Serial assembly in fold-major order; the calibrator canonicalizes by
  // sorting, so assembly order never reaches the stored state anyway.
  std::vector<double> truths;
  std::vector<double> predictions;
  std::vector<double> spreads;
  truths.reserve(scores.size());
  predictions.reserve(scores.size());
  if (scaled) spreads.reserve(scores.size());
  for (size_t f = 0; f < folds.size(); ++f) {
    for (size_t i = 0; i < folds[f].test_rows.size(); ++i) {
      truths.push_back(scores[folds[f].test_rows[i]]);
      predictions.push_back(fold_predictions[f][i]);
      if (scaled) spreads.push_back(fold_spreads[f][i]);
    }
  }
  BBV_ASSIGN_OR_RETURN(
      calibrator_,
      ConformalCalibrator::Calibrate(options_.conformal_mode, truths,
                                     predictions, spreads));
  common::telemetry::IncrementCounter("predictor.calibration_examples",
                                      truths.size());
  return common::Status::OK();
}

double PerformancePredictor::TreeValueSpread(const double* row) const {
  const ml::ForestKernel& kernel = regressor_.kernel();
  std::vector<double> tree_values(kernel.num_trees());
  kernel.PredictRowValuesInto(row, tree_values);
  const stats::SortedView view(std::move(tree_values));
  return view.Percentile(75.0) - view.Percentile(25.0);
}

ScoreEstimate PerformancePredictor::IntervalFor(
    double point, const double* row, double coverage_level) const {
  if (!calibrator_.calibrated()) return ScoreEstimate::Degenerate(point);
  const bool scaled =
      calibrator_.mode() == ConformalCalibrator::Mode::kQuantileForest;
  const double spread = scaled ? TreeValueSpread(row) : 0.0;
  return calibrator_.Interval(point, spread, coverage_level);
}

namespace {
constexpr char kPredictorMagic[] = "BBVPP";
// Version 2 added the trained feature dimension, which guards
// EstimateScoreFromStatistics against mis-sized feature vectors. Version 3
// carries the conformal calibration state (coverage level, mode, sorted
// residual quantiles) so a deployed predictor serves the same intervals it
// was trained with.
constexpr uint32_t kPredictorVersion = 3;
}  // namespace

common::Status PerformancePredictor::Save(std::ostream& out) const {
  if (!trained_) {
    return common::Status::FailedPrecondition("Save before Train");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kPredictorMagic, kPredictorVersion);
  writer.WriteInt32(static_cast<int32_t>(options_.metric));
  writer.WriteDouble(test_score_);
  writer.WriteDoubleVector(options_.percentile_points);
  writer.WriteInt32(static_cast<int32_t>(selected_tree_count_));
  writer.WriteUint64(num_training_examples_);
  writer.WriteUint64(feature_dimension_);
  writer.WriteDouble(options_.coverage_level);
  // Canonical calibration state: sorted residuals, so equal calibration
  // multisets — e.g. the same train at different BBV_THREADS — serialize
  // byte-identically.
  calibrator_.Save(writer);
  BBV_RETURN_NOT_OK(writer.status());
  // Chain the forest's archive core onto the open writer; the bytes are
  // identical to the pre-redesign nested stream Save.
  return regressor_.Save(writer);
}

common::Result<PerformancePredictor> PerformancePredictor::Load(
    std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kPredictorMagic, kPredictorVersion));
  BBV_ASSIGN_OR_RETURN(int32_t metric, reader.ReadInt32());
  if (metric < 0 || metric > static_cast<int32_t>(ScoreMetric::kRocAuc)) {
    return common::Status::InvalidArgument("corrupt score metric");
  }
  Options options;
  options.metric = static_cast<ScoreMetric>(metric);
  PerformancePredictor predictor(options);
  BBV_ASSIGN_OR_RETURN(predictor.test_score_, reader.ReadDouble());
  BBV_ASSIGN_OR_RETURN(predictor.options_.percentile_points,
                       reader.ReadDoubleVector());
  if (predictor.options_.percentile_points.empty()) {
    return common::Status::InvalidArgument("corrupt percentile grid");
  }
  // The quantile machinery BBV_CHECKs that the grid is sorted and within
  // [0, 100]; a predictor file is untrusted input, so reject a bad grid here
  // instead of aborting at the first serving-time estimate.
  for (size_t i = 0; i < predictor.options_.percentile_points.size(); ++i) {
    const double point = predictor.options_.percentile_points[i];
    if (!std::isfinite(point) || point < 0.0 || point > 100.0 ||
        (i > 0 && point <= predictor.options_.percentile_points[i - 1])) {
      return common::Status::InvalidArgument("corrupt percentile grid");
    }
  }
  BBV_ASSIGN_OR_RETURN(int32_t tree_count, reader.ReadInt32());
  predictor.selected_tree_count_ = tree_count;
  BBV_ASSIGN_OR_RETURN(uint64_t examples, reader.ReadUint64());
  predictor.num_training_examples_ = examples;
  BBV_ASSIGN_OR_RETURN(uint64_t feature_dimension, reader.ReadUint64());
  // The feature vector is num_classes * |grid| by construction; anything
  // else is corrupt and would wedge every class-count check downstream.
  if (feature_dimension == 0 ||
      feature_dimension % predictor.options_.percentile_points.size() != 0) {
    return common::Status::InvalidArgument("corrupt feature dimension");
  }
  predictor.feature_dimension_ = feature_dimension;
  BBV_ASSIGN_OR_RETURN(double coverage_level, reader.ReadDouble());
  if (!(coverage_level > 0.0 && coverage_level < 1.0)) {
    return common::Status::InvalidArgument("corrupt coverage level");
  }
  predictor.options_.coverage_level = coverage_level;
  BBV_ASSIGN_OR_RETURN(predictor.calibrator_,
                       ConformalCalibrator::Load(reader));
  predictor.options_.conformal_mode = predictor.calibrator_.mode();
  BBV_ASSIGN_OR_RETURN(predictor.regressor_,
                       ml::RandomForestRegressor::Load(reader));
  predictor.trained_ = true;
  return predictor;
}

common::Result<ScoreEstimate> PerformancePredictor::EstimateScore(
    const ml::BlackBox& model, const data::DataFrame& serving) const {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model.PredictProba(serving));
  return EstimateScoreFromProba(probabilities);
}

common::Result<PerformancePredictor::EstimationErrorProbe>
PerformancePredictor::ProbeEstimationError(
    const ml::BlackBox& model, const data::DataFrame& serving,
    const std::vector<int>& labels) const {
  const common::telemetry::TraceSpan span("predictor.probe_error");
  if (!trained_) {
    return common::Status::FailedPrecondition(
        "ProbeEstimationError before Train");
  }
  if (labels.size() != serving.NumRows()) {
    return common::Status::InvalidArgument(
        "probe labels size " + std::to_string(labels.size()) +
        " != serving rows " + std::to_string(serving.NumRows()));
  }
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model.PredictProba(serving));
  EstimationErrorProbe probe;
  BBV_ASSIGN_OR_RETURN(probe.estimate, EstimateScoreFromProba(probabilities));
  probe.estimated_score = probe.estimate.point;
  probe.actual_score = ComputeScore(options_.metric, probabilities, labels);
  probe.abs_error = std::fabs(probe.estimated_score - probe.actual_score);
  return probe;
}

common::Result<ScoreEstimate> PerformancePredictor::EstimateScoreFromProba(
    const linalg::Matrix& probabilities) const {
  return EstimateScoreFromProba(probabilities, options_.coverage_level);
}

common::Result<ScoreEstimate> PerformancePredictor::EstimateScoreFromProba(
    const linalg::Matrix& probabilities, double coverage_level) const {
  const common::telemetry::TraceSpan span("predictor.estimate");
  if (!trained_) {
    return common::Status::FailedPrecondition("EstimateScore before Train");
  }
  common::telemetry::IncrementCounter("predictor.estimate.calls");
  common::telemetry::IncrementCounter("predictor.estimate.rows",
                                      probabilities.rows());
  const std::vector<double> statistics =
      PredictionStatistics(probabilities, options_.percentile_points);
  if (statistics.size() != feature_dimension_) {
    return common::Status::InvalidArgument(
        "serving batch has " + std::to_string(probabilities.cols()) +
        " classes but the predictor was trained on " +
        std::to_string(feature_dimension_ /
                       options_.percentile_points.size()));
  }
  const double point = regressor_.PredictRow(statistics.data());
  return IntervalFor(point, statistics.data(), coverage_level);
}

common::Result<ScoreEstimate>
PerformancePredictor::EstimateScoreFromStatistics(
    std::span<const double> statistics) const {
  return EstimateScoreFromStatistics(statistics, options_.coverage_level);
}

common::Result<ScoreEstimate>
PerformancePredictor::EstimateScoreFromStatistics(
    std::span<const double> statistics, double coverage_level) const {
  const common::telemetry::TraceSpan span("predictor.estimate");
  if (!trained_) {
    return common::Status::FailedPrecondition("EstimateScore before Train");
  }
  if (statistics.size() != feature_dimension_) {
    // The regressor indexes features by position; a mis-sized vector would
    // read out of bounds, so reject it before inference.
    return common::Status::InvalidArgument(
        "feature vector has " + std::to_string(statistics.size()) +
        " entries but the predictor was trained on " +
        std::to_string(feature_dimension_));
  }
  common::telemetry::IncrementCounter("predictor.estimate.calls");
  const double point = regressor_.PredictRow(statistics.data());
  return IntervalFor(point, statistics.data(), coverage_level);
}

common::Status PerformancePredictor::EstimateScoresFromStatistics(
    const linalg::Matrix& statistics, std::span<double> out) const {
  const common::telemetry::TraceSpan span("predictor.estimate_batch");
  if (!trained_) {
    return common::Status::FailedPrecondition("EstimateScore before Train");
  }
  if (statistics.cols() != feature_dimension_) {
    return common::Status::InvalidArgument(
        "feature matrix has " + std::to_string(statistics.cols()) +
        " columns but the predictor was trained on " +
        std::to_string(feature_dimension_));
  }
  if (out.size() != statistics.rows()) {
    return common::Status::InvalidArgument(
        "output span holds " + std::to_string(out.size()) +
        " slots for " + std::to_string(statistics.rows()) + " feature rows");
  }
  if (statistics.rows() == 0) return common::Status::OK();
  common::telemetry::IncrementCounter("predictor.estimate.calls",
                                      statistics.rows());
  common::telemetry::IncrementCounter("predictor.estimate.batches");
  regressor_.PredictInto(statistics, out);
  return common::Status::OK();
}

common::Status PerformancePredictor::EstimateScoresFromStatistics(
    const linalg::Matrix& statistics, std::span<ScoreEstimate> out) const {
  const common::telemetry::TraceSpan span("predictor.estimate_batch");
  if (!trained_) {
    return common::Status::FailedPrecondition("EstimateScore before Train");
  }
  if (statistics.cols() != feature_dimension_) {
    return common::Status::InvalidArgument(
        "feature matrix has " + std::to_string(statistics.cols()) +
        " columns but the predictor was trained on " +
        std::to_string(feature_dimension_));
  }
  if (out.size() != statistics.rows()) {
    return common::Status::InvalidArgument(
        "output span holds " + std::to_string(out.size()) +
        " slots for " + std::to_string(statistics.rows()) + " feature rows");
  }
  if (statistics.rows() == 0) return common::Status::OK();
  common::telemetry::IncrementCounter("predictor.estimate.calls",
                                      statistics.rows());
  common::telemetry::IncrementCounter("predictor.estimate.batches");
  // Points through the one kernel batch call (bit-identical to the scalar
  // walk), then the interval per row — a pure function of the point and,
  // in quantile-forest mode, the same per-row spread the scalar path
  // computes, so batched and scalar estimates match bit for bit.
  std::vector<double> points(statistics.rows());
  regressor_.PredictInto(statistics, points);
  for (size_t i = 0; i < statistics.rows(); ++i) {
    out[i] = IntervalFor(points[i], statistics.RowData(i),
                         options_.coverage_level);
  }
  return common::Status::OK();
}

}  // namespace bbv::core
