#ifndef BBV_CORE_BASELINES_H_
#define BBV_CORE_BASELINES_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataframe.h"
#include "linalg/matrix.h"
#include "ml/black_box.h"

namespace bbv::core {

/// Task-independent dataset-shift detectors, the paper's §6.2 baselines.
/// Each is "fitted" on clean reference data and later asked whether a
/// serving batch looks shifted. A detected shift is interpreted as an alarm
/// ("do not trust the predictions") when computing validation F1 scores.
class ShiftDetector {
 public:
  virtual ~ShiftDetector() = default;

  /// True if the detector flags the serving batch as shifted.
  virtual common::Result<bool> DetectsShift(
      const data::DataFrame& serving) const = 0;

  virtual std::string Name() const = 0;
};

/// REL: univariate shift detection on the *raw input columns* —
/// Kolmogorov-Smirnov tests for numeric columns and chi-squared tests for
/// categorical columns against the reference data, with Bonferroni
/// correction across columns. Ignores text and image columns (the paper
/// notes REL "was not applicable to the image dataset").
class RelShiftDetector : public ShiftDetector {
 public:
  explicit RelShiftDetector(double alpha = 0.05) : alpha_(alpha) {}

  /// Records the reference distributions from clean data.
  common::Status Fit(const data::DataFrame& reference);

  common::Result<bool> DetectsShift(
      const data::DataFrame& serving) const override;
  std::string Name() const override { return "REL"; }

 private:
  double alpha_;
  bool fitted_ = false;
  /// Numeric column name -> reference values.
  std::vector<std::pair<std::string, std::vector<double>>> numeric_reference_;
  /// Categorical column name -> (category -> count). An ordered map so the
  /// chi-squared cell vectors are assembled in lexicographic category order
  /// regardless of insertion history (determinism gate).
  std::vector<std::pair<std::string, std::map<std::string, double>>>
      categorical_reference_;
};

/// BBSE (Lipton et al.): Kolmogorov-Smirnov test between the black box
/// model's softmax outputs on the clean test data and on the serving data,
/// per class dimension with Bonferroni correction.
class BbseDetector : public ShiftDetector {
 public:
  explicit BbseDetector(const ml::BlackBox* model, double alpha = 0.05)
      : model_(model), alpha_(alpha) {
    BBV_CHECK(model_ != nullptr);
  }

  /// Retains the model outputs on the clean reference data.
  common::Status Fit(const data::DataFrame& reference);

  common::Result<bool> DetectsShift(
      const data::DataFrame& serving) const override;

  /// Decision from precomputed model outputs (avoids re-running the model
  /// when the caller already has them).
  common::Result<bool> DetectsShiftFromProba(
      const linalg::Matrix& probabilities) const;

  std::string Name() const override { return "BBSE"; }

 private:
  const ml::BlackBox* model_;
  double alpha_;
  bool fitted_ = false;
  linalg::Matrix reference_probabilities_;
};

/// BBSEh (hard-label variant, Rabanser et al.): chi-squared test between
/// the counts of the *predicted classes* on the clean test data and on the
/// serving data.
class BbsehDetector : public ShiftDetector {
 public:
  explicit BbsehDetector(const ml::BlackBox* model, double alpha = 0.05)
      : model_(model), alpha_(alpha) {
    BBV_CHECK(model_ != nullptr);
  }

  common::Status Fit(const data::DataFrame& reference);

  common::Result<bool> DetectsShift(
      const data::DataFrame& serving) const override;

  /// Decision from precomputed model outputs.
  common::Result<bool> DetectsShiftFromProba(
      const linalg::Matrix& probabilities) const;

  std::string Name() const override { return "BBSE-h"; }

 private:
  const ml::BlackBox* model_;
  double alpha_;
  bool fitted_ = false;
  std::vector<double> reference_class_counts_;
};

}  // namespace bbv::core

#endif  // BBV_CORE_BASELINES_H_
