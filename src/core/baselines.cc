#include "core/baselines.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "stats/hypothesis.h"

namespace bbv::core {

// ---------------------------------------------------------------------------
// REL
// ---------------------------------------------------------------------------

common::Status RelShiftDetector::Fit(const data::DataFrame& reference) {
  numeric_reference_.clear();
  categorical_reference_.clear();
  for (size_t col = 0; col < reference.NumCols(); ++col) {
    const data::Column& column = reference.column(col);
    if (column.type() == data::ColumnType::kNumeric) {
      std::vector<double> values = column.NumericValues();
      if (values.empty()) continue;
      numeric_reference_.emplace_back(column.name(), std::move(values));
    } else if (column.type() == data::ColumnType::kCategorical) {
      std::map<std::string, double> counts;
      for (const auto& cell : column.cells()) {
        if (cell.is_string()) counts[cell.AsString()] += 1.0;
      }
      if (counts.empty()) continue;
      categorical_reference_.emplace_back(column.name(), std::move(counts));
    }
    // Text and image columns are not handled by REL.
  }
  if (numeric_reference_.empty() && categorical_reference_.empty()) {
    return common::Status::FailedPrecondition(
        "REL has no numeric or categorical columns to test");
  }
  fitted_ = true;
  return common::Status::OK();
}

common::Result<bool> RelShiftDetector::DetectsShift(
    const data::DataFrame& serving) const {
  const common::telemetry::TraceSpan span("baselines.rel.detect");
  if (!fitted_) {
    return common::Status::FailedPrecondition("DetectsShift before Fit");
  }
  common::telemetry::IncrementCounter("baselines.rel.calls");
  const size_t num_numeric = numeric_reference_.size();
  const size_t num_tests = num_numeric + categorical_reference_.size();
  const double corrected_alpha = stats::BonferroniAlpha(alpha_, num_tests);

  // The per-column tests are independent, so the sweep fans out over the
  // shared pool: every column records its own verdict and the detector ORs
  // them afterwards (same decision as the serial early-exit scan).
  std::vector<unsigned char> column_shifted(num_tests, 0);
  BBV_RETURN_NOT_OK(common::ParallelFor(
      num_tests, [&](size_t index) -> common::Status {
        if (index < num_numeric) {
          const auto& [name, reference_values] = numeric_reference_[index];
          if (!serving.HasColumn(name)) {
            return common::Status::NotFound("serving data lacks column '" +
                                            name + "'");
          }
          const std::vector<double> serving_values =
              serving.ColumnByName(name).NumericValues();
          if (serving_values.empty()) {  // all values gone: shifted
            column_shifted[index] = 1;
            return common::Status::OK();
          }
          const stats::TestResult test =
              stats::TwoSampleKsTest(reference_values, serving_values);
          column_shifted[index] = test.Rejects(corrected_alpha) ? 1 : 0;
          return common::Status::OK();
        }
        const auto& [name, reference_counts] =
            categorical_reference_[index - num_numeric];
        if (!serving.HasColumn(name)) {
          return common::Status::NotFound("serving data lacks column '" +
                                          name + "'");
        }
        // Shared category universe: reference categories plus "other" for
        // unseen serving values (typos, encoding errors land there).
        std::map<std::string, double> serving_counts;
        double serving_other = 0.0;
        for (const auto& cell : serving.ColumnByName(name).cells()) {
          if (!cell.is_string()) continue;
          if (reference_counts.contains(cell.AsString())) {
            serving_counts[cell.AsString()] += 1.0;
          } else {
            serving_other += 1.0;
          }
        }
        std::vector<double> reference_vector;
        std::vector<double> serving_vector;
        reference_vector.reserve(reference_counts.size() + 1);
        serving_vector.reserve(reference_counts.size() + 1);
        for (const auto& [category, count] : reference_counts) {
          reference_vector.push_back(count);
          const auto it = serving_counts.find(category);
          serving_vector.push_back(it == serving_counts.end() ? 0.0
                                                              : it->second);
        }
        reference_vector.push_back(0.0);
        serving_vector.push_back(serving_other);
        double serving_total = serving_other;
        for (const auto& [category, count] : serving_counts) {
          serving_total += count;
        }
        if (serving_total == 0.0) {  // column emptied out: shifted
          column_shifted[index] = 1;
          return common::Status::OK();
        }
        const stats::TestResult test =
            stats::ChiSquaredHomogeneityTest(reference_vector, serving_vector);
        column_shifted[index] = test.Rejects(corrected_alpha) ? 1 : 0;
        return common::Status::OK();
      }));
  const bool shifted =
      std::any_of(column_shifted.begin(), column_shifted.end(),
                  [](unsigned char flag) { return flag != 0; });
  if (shifted) common::telemetry::IncrementCounter("baselines.rel.shifts");
  return shifted;
}

// ---------------------------------------------------------------------------
// BBSE
// ---------------------------------------------------------------------------

common::Status BbseDetector::Fit(const data::DataFrame& reference) {
  BBV_ASSIGN_OR_RETURN(reference_probabilities_,
                       model_->PredictProba(reference));
  fitted_ = true;
  return common::Status::OK();
}

common::Result<bool> BbseDetector::DetectsShift(
    const data::DataFrame& serving) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("DetectsShift before Fit");
  }
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model_->PredictProba(serving));
  return DetectsShiftFromProba(probabilities);
}

common::Result<bool> BbseDetector::DetectsShiftFromProba(
    const linalg::Matrix& probabilities) const {
  const common::telemetry::TraceSpan span("baselines.bbse.detect");
  if (!fitted_) {
    return common::Status::FailedPrecondition("DetectsShift before Fit");
  }
  common::telemetry::IncrementCounter("baselines.bbse.calls");
  const double corrected_alpha =
      stats::BonferroniAlpha(alpha_, probabilities.cols());
  for (size_t k = 0; k < probabilities.cols(); ++k) {
    const stats::TestResult test = stats::TwoSampleKsTest(
        reference_probabilities_.Col(k), probabilities.Col(k));
    if (test.Rejects(corrected_alpha)) {
      common::telemetry::IncrementCounter("baselines.bbse.shifts");
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// BBSEh
// ---------------------------------------------------------------------------

common::Status BbsehDetector::Fit(const data::DataFrame& reference) {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model_->PredictProba(reference));
  reference_class_counts_.assign(probabilities.cols(), 0.0);
  for (size_t predicted : probabilities.ArgMaxPerRow()) {
    reference_class_counts_[predicted] += 1.0;
  }
  fitted_ = true;
  return common::Status::OK();
}

common::Result<bool> BbsehDetector::DetectsShift(
    const data::DataFrame& serving) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("DetectsShift before Fit");
  }
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model_->PredictProba(serving));
  return DetectsShiftFromProba(probabilities);
}

common::Result<bool> BbsehDetector::DetectsShiftFromProba(
    const linalg::Matrix& probabilities) const {
  const common::telemetry::TraceSpan span("baselines.bbseh.detect");
  if (!fitted_) {
    return common::Status::FailedPrecondition("DetectsShift before Fit");
  }
  common::telemetry::IncrementCounter("baselines.bbseh.calls");
  std::vector<double> serving_counts(probabilities.cols(), 0.0);
  for (size_t predicted : probabilities.ArgMaxPerRow()) {
    serving_counts[predicted] += 1.0;
  }
  const stats::TestResult test = stats::ChiSquaredHomogeneityTest(
      reference_class_counts_, serving_counts);
  const bool shifted = test.Rejects(alpha_);
  if (shifted) common::telemetry::IncrementCounter("baselines.bbseh.shifts");
  return shifted;
}

}  // namespace bbv::core
