#ifndef BBV_CORE_SCORE_ESTIMATE_H_
#define BBV_CORE_SCORE_ESTIMATE_H_

namespace bbv::core {

/// The one estimate currency of the validator: a point estimate of a score
/// together with the conformal interval certifying it. Every estimate-
/// returning surface (PerformancePredictor::EstimateScore*, the streaming
/// scorer, the monitor, the multi-tenant service) speaks this type.
///
/// An *uncalibrated* estimate is degenerate: lo == hi == point and
/// coverage_level == 0 — exactly the pre-interval behavior, so consumers
/// that only read `point` are unaffected by calibration being off.
///
/// For a calibrated estimate the contract is the split-conformal one: the
/// true score lands in [lo, hi] with probability >= coverage_level
/// (marginally over calibration and serving draws), lo <= point <= hi, and
/// the endpoints are clamped to [0, 1] because every score the predictor
/// targets (accuracy, ROC AUC) lives there.
struct ScoreEstimate {
  /// The regressor's point prediction — byte-for-byte the value the
  /// pre-interval API returned, never clamped or recentred.
  double point = 0.0;
  /// Conformal lower / upper interval endpoints.
  double lo = 0.0;
  double hi = 0.0;
  /// Nominal marginal coverage of [lo, hi]; 0 for degenerate estimates.
  double coverage_level = 0.0;

  double width() const { return hi - lo; }
  bool calibrated() const { return coverage_level > 0.0; }

  static ScoreEstimate Degenerate(double point) {
    return ScoreEstimate{point, point, point, 0.0};
  }

  friend bool operator==(const ScoreEstimate&, const ScoreEstimate&) = default;
};

}  // namespace bbv::core

#endif  // BBV_CORE_SCORE_ESTIMATE_H_
