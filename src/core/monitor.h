#ifndef BBV_CORE_MONITOR_H_
#define BBV_CORE_MONITOR_H_

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/performance_predictor.h"
#include "data/dataframe.h"
#include "ml/black_box.h"
#include "stats/quantile_sketch.h"

namespace bbv::core {

/// Serving-time convenience wrapper (the "end user or serving system
/// inspects estimated score" step from the paper's Figure 1): feeds batches
/// through the black box and a trained performance predictor, keeps a
/// bounded history of estimates, and renders an operations summary plus a
/// machine-readable JSON serving log.
///
/// Hardening contract: the clean-test reference score must be finite and
/// strictly positive — a degenerate reference used to silently force
/// relative_drop to 0 so alarms could never fire. Use Create() for the
/// recoverable Status-returning validation; the constructors enforce the
/// same invariants with BBV_CHECK.
class ModelMonitor {
 public:
  /// What the alarm thresholds on. The estimate is an interval now
  /// (core::ScoreEstimate), so "the score dropped" is a statement with an
  /// uncertainty attached:
  ///  * kCertifiedDrop (default) alarms when the *interval* has crossed
  ///    the drop threshold — even the optimistic endpoint (hi) shows a
  ///    relative drop >= alarm_threshold, i.e. the calibrated interval
  ///    certifies the drop at the estimate's coverage level. Estimation
  ///    noise inside the interval can no longer fire spurious alarms.
  ///  * kPointDrop alarms on the raw point estimate's drop (the
  ///    pre-interval behavior, and what both policies degrade to when the
  ///    predictor is uncalibrated).
  enum class AlarmPolicy {
    kCertifiedDrop,
    kPointDrop,
  };

  struct Options {
    /// Relative quality drop that raises an alarm (e.g. 0.05 = 5%). An
    /// alarm fires when the policy-selected drop >= alarm_threshold.
    double alarm_threshold = 0.05;
    /// Which drop the alarm thresholds on (see AlarmPolicy).
    AlarmPolicy alarm_policy = AlarmPolicy::kCertifiedDrop;
    /// Maximum batch reports retained (older entries are dropped).
    size_t history_limit = 1000;
    /// Sliding-window mode: when positive, the monitor keeps a ring of the
    /// last `window_batches` mini-batches as per-class quantile sketches,
    /// merges them on demand, and alarms on the *windowed* estimate — so
    /// alarms reflect recent traffic instead of all-time aggregates, in
    /// O(window * num_classes * 2^sketch_resolution_bits) memory. 0 keeps
    /// the classic per-batch behavior.
    size_t window_batches = 0;
    /// Sketch resolution for the window ring (see
    /// stats::QuantileSketch::Options); only used when window_batches > 0.
    int sketch_resolution_bits = 12;
  };

  /// Assessment of one serving batch.
  struct BatchReport {
    size_t batch_id = 0;
    size_t rows = 0;
    /// Predictor estimate of the score on this batch, with its conformal
    /// interval (degenerate when the predictor is uncalibrated).
    ScoreEstimate estimate;
    /// Clean-test reference score l_test.
    double reference_score = 0.0;
    /// (reference - estimate.point) / reference; positive = estimated drop.
    double relative_drop = 0.0;
    /// (reference - estimate.hi) / reference: the drop even the interval's
    /// optimistic endpoint concedes — what kCertifiedDrop alarms on.
    /// Equals relative_drop for degenerate estimates.
    double certified_drop = 0.0;
    bool alarm = false;
    /// Wall-clock seconds spent scoring this batch (predictor featurization
    /// + forest inference; model inference too when observed via
    /// Observe()). 0 when telemetry is disabled (BBV_TELEMETRY=off).
    double latency_seconds = 0.0;
    /// Telemetry snapshot at report time: process-wide count of predictor
    /// estimate calls, for cross-referencing this serving log against the
    /// telemetry JSON export. 0 when telemetry is disabled.
    uint64_t estimate_calls_total = 0;
    /// Alarms this monitor has raised up to and including this report.
    size_t alarms_total = 0;
    /// Sliding-window fields; meaningful only when Options::window_batches
    /// is positive. The estimate over the merged sketches of the last
    /// `window_batches_used` batches, and its drops — this is what drives
    /// the alarm in window mode.
    ScoreEstimate windowed_estimate;
    double windowed_relative_drop = 0.0;
    /// Certified drop of the windowed interval (see certified_drop).
    double windowed_certified_drop = 0.0;
    /// Batches merged into the windowed estimate (<= window_batches).
    size_t window_batches_used = 0;
    /// Rows covered by the windowed estimate.
    uint64_t window_rows = 0;
    /// Predictor epoch this batch was scored under: 0 for the predictor the
    /// monitor was created with, incremented by every SwapPredictor. In
    /// windowed mode a swap also clears the window ring, so all
    /// window_batches_used batches of a report belong to the same epoch.
    uint64_t epoch = 0;
  };

  /// Validating factory: rejects a null model, an untrained predictor, an
  /// alarm threshold outside (0, 1), a zero history limit, and — the
  /// recoverable path for serving systems — a non-finite or non-positive
  /// reference score, with InvalidArgument instead of a crash.
  static common::Result<ModelMonitor> Create(const ml::BlackBox* model,
                                             PerformancePredictor predictor,
                                             Options options);
  static common::Result<ModelMonitor> Create(const ml::BlackBox* model,
                                             PerformancePredictor predictor) {
    return Create(model, std::move(predictor), Options{});
  }

  /// Proba-only factory for serving systems that run model inference
  /// elsewhere (the multi-tenant service): no black box is attached, so
  /// the frame overload of Observe() is unavailable — feed precomputed
  /// probabilities through Observe(const linalg::Matrix&). `name` labels
  /// the monitor in Summary()/ExportJson(); the predictor is shared, not
  /// copied, so thousands of tenants can monitor against one deployed
  /// forest.
  static common::Result<ModelMonitor> CreateForProba(
      std::string name,
      std::shared_ptr<const PerformancePredictor> predictor, Options options);

  /// `model` must outlive the monitor; `predictor` must be trained with a
  /// finite, strictly positive reference score (BBV_CHECK-enforced).
  ModelMonitor(const ml::BlackBox* model, PerformancePredictor predictor)
      : ModelMonitor(model, std::move(predictor), Options{}) {}
  ModelMonitor(const ml::BlackBox* model, PerformancePredictor predictor,
               Options options);

  /// The one observation surface: scores one serving batch and appends the
  /// report to the history. The frame overload runs the attached black box
  /// first (unavailable on proba-only monitors); the probability overload
  /// takes precomputed model outputs. Both reject empty batches and
  /// non-finite estimates (neither pollutes the history), and both return
  /// the report — callers must consume it (or at minimum its Status; the
  /// status-discard lint flags drops). The former ObserveFromProba name is
  /// folded into this overload set.
  common::Result<BatchReport> Observe(const data::DataFrame& serving);
  common::Result<BatchReport> Observe(const linalg::Matrix& probabilities);

  /// Deploys a retrained predictor (tenant hot-swap). This is an *epoch
  /// boundary*: the windowed ring is cleared, because its sketches were
  /// scored under the old predictor's reference — mixing them into a window
  /// estimated by the new predictor would alarm (or fail to alarm) against
  /// a reference the batches were never served under. The first report
  /// after a swap therefore has window_batches_used == 1 and carries the
  /// incremented epoch. Rejects a null/untrained predictor and a
  /// non-finite or non-positive reference score (the monitor keeps its old
  /// predictor on rejection).
  common::Status SwapPredictor(
      std::shared_ptr<const PerformancePredictor> predictor);

  /// Epoch boundaries crossed so far (== accepted SwapPredictor calls).
  uint64_t epoch() const { return epoch_; }

  const std::vector<BatchReport>& history() const { return history_; }
  size_t batches_observed() const { return batches_observed_; }
  size_t alarms_raised() const { return alarms_raised_; }
  /// Fraction of observed batches that alarmed; 0 before any observation.
  double AlarmRate() const;

  /// Multi-line human-readable summary: batches seen, alarm count and rate,
  /// the distribution of recent estimates, and per-batch latency
  /// percentiles from the retained history.
  std::string Summary() const;

  /// Machine-readable serving log: monitor configuration, aggregate alarm
  /// statistics, and one JSON object per retained batch report.
  std::string ExportJson() const;

  /// True when the monitor alarms on windowed estimates.
  bool windowed() const { return options_.window_batches > 0; }

  /// Drops the windowed ring without observing anything — the same epoch
  /// boundary SwapPredictor enforces, for callers that invalidate the
  /// window by other means (e.g. the tenant registry evicting a cold
  /// tenant and rehydrating it later). No-op in classic mode.
  void ClearWindow() { window_.clear(); }

 private:
  ModelMonitor(const ml::BlackBox* model, std::string name,
               std::shared_ptr<const PerformancePredictor> predictor,
               Options options);

  const ml::BlackBox* model_;
  /// Label for Summary()/ExportJson(): the model's name, or the caller-
  /// supplied name for proba-only monitors.
  std::string name_;
  std::shared_ptr<const PerformancePredictor> predictor_;
  Options options_;
  std::vector<BatchReport> history_;
  /// Ring of per-batch sketch banks, newest at the back; bounded by
  /// options_.window_batches. Empty in classic mode.
  std::deque<stats::QuantileSketchBank> window_;
  size_t batches_observed_ = 0;
  size_t alarms_raised_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace bbv::core

#endif  // BBV_CORE_MONITOR_H_
