#ifndef BBV_CORE_MONITOR_H_
#define BBV_CORE_MONITOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/performance_predictor.h"
#include "data/dataframe.h"
#include "ml/black_box.h"

namespace bbv::core {

/// Serving-time convenience wrapper (the "end user or serving system
/// inspects estimated score" step from the paper's Figure 1): feeds batches
/// through the black box and a trained performance predictor, keeps a
/// bounded history of estimates, and renders an operations summary.
class ModelMonitor {
 public:
  struct Options {
    /// Relative quality drop that raises an alarm (e.g. 0.05 = 5%).
    double alarm_threshold = 0.05;
    /// Maximum batch reports retained (older entries are dropped).
    size_t history_limit = 1000;
  };

  /// Assessment of one serving batch.
  struct BatchReport {
    size_t batch_id = 0;
    size_t rows = 0;
    /// Predictor estimate of the score on this batch.
    double estimated_score = 0.0;
    /// Clean-test reference score l_test.
    double reference_score = 0.0;
    /// (reference - estimate) / reference; positive = estimated drop.
    double relative_drop = 0.0;
    bool alarm = false;
  };

  /// `model` must outlive the monitor; `predictor` must be trained.
  ModelMonitor(const ml::BlackBox* model, PerformancePredictor predictor)
      : ModelMonitor(model, std::move(predictor), Options{}) {}
  ModelMonitor(const ml::BlackBox* model, PerformancePredictor predictor,
               Options options);

  /// Scores one serving batch and appends the report to the history.
  common::Result<BatchReport> Observe(const data::DataFrame& serving);

  /// Report from precomputed model outputs.
  common::Result<BatchReport> ObserveFromProba(
      const linalg::Matrix& probabilities);

  const std::vector<BatchReport>& history() const { return history_; }
  size_t batches_observed() const { return batches_observed_; }
  size_t alarms_raised() const { return alarms_raised_; }

  /// Multi-line human-readable summary: batches seen, alarm count, and the
  /// distribution of recent estimates.
  std::string Summary() const;

 private:
  const ml::BlackBox* model_;
  PerformancePredictor predictor_;
  Options options_;
  std::vector<BatchReport> history_;
  size_t batches_observed_ = 0;
  size_t alarms_raised_ = 0;
};

}  // namespace bbv::core

#endif  // BBV_CORE_MONITOR_H_
