#ifndef BBV_ERRORS_SWAPPED_COLUMNS_H_
#define BBV_ERRORS_SWAPPED_COLUMNS_H_

#include <string>
#include <utility>
#include <vector>

#include "errors/error_gen.h"

namespace bbv::errors {

/// Swapped column values (the paper's buggy-input-form error): picks a pair
/// of columns — by default one categorical and one numeric — and swaps the
/// cell contents between them for a random proportion of the rows. After
/// the swap, a categorical column carries numbers (which one-hot encode to
/// zero vectors) and a numeric column carries strings (which impute to the
/// training mean), exactly how a production feature pipeline would react.
class SwappedColumns : public ErrorGen {
 public:
  /// `pair` empty names = choose a random categorical/numeric pair per call.
  explicit SwappedColumns(std::pair<std::string, std::string> pair = {},
                          FractionRange fraction = {})
      : pair_(std::move(pair)), fraction_(fraction) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "swapped_columns"; }

 private:
  std::pair<std::string, std::string> pair_;
  FractionRange fraction_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_SWAPPED_COLUMNS_H_
