#ifndef BBV_ERRORS_NUMERIC_ERRORS_H_
#define BBV_ERRORS_NUMERIC_ERRORS_H_

#include <string>
#include <vector>

#include "errors/error_gen.h"

namespace bbv::errors {

/// Outliers in numeric attributes: adds gaussian noise centered at each
/// corrupted value with a standard deviation of `scale x column stddev`,
/// where the scale is drawn uniformly from [2, 5] per column (paper §6).
class NumericOutliers : public ErrorGen {
 public:
  explicit NumericOutliers(std::vector<std::string> columns = {},
                           FractionRange fraction = {},
                           double min_scale = 2.0, double max_scale = 5.0)
      : columns_(std::move(columns)),
        fraction_(fraction),
        min_scale_(min_scale),
        max_scale_(max_scale) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "outliers"; }

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  double min_scale_;
  double max_scale_;
};

/// Scaling bugs: multiplies a random subset of a numeric column's values by
/// 10, 100 or 1000 — the "milliseconds instead of seconds" preprocessing bug.
class Scaling : public ErrorGen {
 public:
  explicit Scaling(std::vector<std::string> columns = {},
                   FractionRange fraction = {},
                   std::vector<double> factors = {10.0, 100.0, 1000.0})
      : columns_(std::move(columns)),
        fraction_(fraction),
        factors_(std::move(factors)) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "scaling"; }

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  std::vector<double> factors_;
};

/// "Smearing": perturbs a random proportion of a numeric attribute by a
/// randomly chosen relative amount in [-10%, +10%] (paper §6.2.2, one of the
/// error types unknown to the validator at training time).
class NumericSmearing : public ErrorGen {
 public:
  /// `max_columns` caps how many random columns one call may hit (0 = all;
  /// the paper's §6.2.2 smears a single attribute -> pass 1).
  explicit NumericSmearing(std::vector<std::string> columns = {},
                           FractionRange fraction = {},
                           double max_relative_change = 0.1,
                           size_t max_columns = 0)
      : columns_(std::move(columns)),
        fraction_(fraction),
        max_relative_change_(max_relative_change),
        max_columns_(max_columns) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "smearing"; }

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  double max_relative_change_;
  size_t max_columns_;
};

/// Flipped sign: multiplies a random proportion of a numeric attribute by -1
/// (paper §6.2.2).
class SignFlip : public ErrorGen {
 public:
  explicit SignFlip(std::vector<std::string> columns = {},
                    FractionRange fraction = {}, size_t max_columns = 0)
      : columns_(std::move(columns)),
        fraction_(fraction),
        max_columns_(max_columns) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "sign_flip"; }

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  size_t max_columns_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_NUMERIC_ERRORS_H_
