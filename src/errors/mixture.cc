#include "errors/mixture.h"

namespace bbv::errors {

common::Result<data::DataFrame> ErrorMixture::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  std::vector<size_t> included;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (rng.Bernoulli(inclusion_probability_)) included.push_back(i);
  }
  if (included.empty()) {
    included.push_back(rng.UniformInt(components_.size()));
  }
  data::DataFrame corrupted = frame;
  for (size_t i : included) {
    BBV_ASSIGN_OR_RETURN(corrupted, components_[i]->Corrupt(corrupted, rng));
  }
  return corrupted;
}

common::Result<data::DataFrame> RandomSubsetCorruption::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  return BlendCorruption(frame, *inner_, fraction_.Sample(rng), rng);
}

common::Result<data::DataFrame> BlendCorruption(const data::DataFrame& frame,
                                                const ErrorGen& generator,
                                                double fraction,
                                                common::Rng& rng) {
  BBV_ASSIGN_OR_RETURN(data::DataFrame fully_corrupted,
                       generator.Corrupt(frame, rng));
  data::DataFrame blended = frame;
  for (size_t row : PickRows(frame.NumRows(), fraction, rng)) {
    for (size_t col = 0; col < blended.NumCols(); ++col) {
      blended.column(col).cell(row) = fully_corrupted.column(col).cell(row);
    }
  }
  return blended;
}

}  // namespace bbv::errors
