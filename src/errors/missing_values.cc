#include "errors/missing_values.h"

#include <algorithm>
#include <numeric>

namespace bbv::errors {

common::Result<data::DataFrame> MissingValues::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  data::DataFrame corrupted = frame;
  const std::vector<std::string> columns =
      PickColumns(frame, column_type_, rng, columns_);
  for (const std::string& name : columns) {
    if (!corrupted.HasColumn(name)) {
      return common::Status::NotFound("no column named '" + name + "'");
    }
    data::Column& column = corrupted.ColumnByName(name);
    const double fraction = fraction_.Sample(rng);
    for (size_t row = 0; row < column.size(); ++row) {
      if (rng.Bernoulli(fraction)) {
        column.cell(row) = data::CellValue::Na();
      }
    }
  }
  return corrupted;
}

common::Result<data::DataFrame> EntropyBasedMissing::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  BBV_ASSIGN_OR_RETURN(linalg::Matrix probabilities,
                       model_->PredictProba(frame));
  // Uncertainty = 1 - p_max; ascending certainty == descending uncertainty.
  const std::vector<double> p_max = probabilities.MaxPerRow();
  std::vector<size_t> order(frame.NumRows());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return p_max[a] > p_max[b]; });

  data::DataFrame corrupted = frame;
  const std::vector<std::string> columns = PickColumns(
      frame, data::ColumnType::kCategorical, rng, columns_);
  const double fraction = fraction_.Sample(rng);
  const size_t count = static_cast<size_t>(
      fraction * static_cast<double>(frame.NumRows()));
  for (const std::string& name : columns) {
    if (!corrupted.HasColumn(name)) {
      return common::Status::NotFound("no column named '" + name + "'");
    }
    data::Column& column = corrupted.ColumnByName(name);
    // Discard values from the rows the model is most certain about.
    for (size_t i = 0; i < count; ++i) {
      column.cell(order[i]) = data::CellValue::Na();
    }
  }
  return corrupted;
}

}  // namespace bbv::errors
