#include "errors/swapped_columns.h"

#include <algorithm>

namespace bbv::errors {

common::Result<data::DataFrame> SwappedColumns::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  std::string first = pair_.first;
  std::string second = pair_.second;
  if (first.empty() || second.empty()) {
    const std::vector<std::string> categorical =
        frame.ColumnNamesOfType(data::ColumnType::kCategorical);
    const std::vector<std::string> numeric =
        frame.ColumnNamesOfType(data::ColumnType::kNumeric);
    if (!categorical.empty() && !numeric.empty()) {
      first = rng.Choice(categorical);
      second = rng.Choice(numeric);
    } else if (numeric.size() >= 2) {
      const std::vector<size_t> pick =
          rng.SampleWithoutReplacement(numeric.size(), 2);
      first = numeric[pick[0]];
      second = numeric[pick[1]];
    } else if (categorical.size() >= 2) {
      const std::vector<size_t> pick =
          rng.SampleWithoutReplacement(categorical.size(), 2);
      first = categorical[pick[0]];
      second = categorical[pick[1]];
    } else {
      return common::Status::FailedPrecondition(
          "SwappedColumns needs at least two swappable columns");
    }
  }
  data::DataFrame corrupted = frame;
  if (!corrupted.HasColumn(first) || !corrupted.HasColumn(second)) {
    return common::Status::NotFound("swap columns '" + first + "'/'" +
                                    second + "' not found");
  }
  data::Column& column_a = corrupted.ColumnByName(first);
  data::Column& column_b = corrupted.ColumnByName(second);
  const double fraction = fraction_.Sample(rng);
  for (size_t row : PickRows(frame.NumRows(), fraction, rng)) {
    std::swap(column_a.cell(row), column_b.cell(row));
  }
  return corrupted;
}

}  // namespace bbv::errors
