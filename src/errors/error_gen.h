#ifndef BBV_ERRORS_ERROR_GEN_H_
#define BBV_ERRORS_ERROR_GEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataframe.h"

namespace bbv::errors {

/// Range from which a generator samples the fraction of cells/rows it
/// corrupts on each invocation. The paper's setting: the *type* of error is
/// known, its magnitude is not, so every Corrupt call draws a fresh one.
struct FractionRange {
  double min = 0.0;
  double max = 1.0;

  double Sample(common::Rng& rng) const { return rng.Uniform(min, max); }
};

/// Randomized dataset-corruption operator (the paper's ErrorGen base class).
/// Implementations copy the input frame and randomly inject one kind of
/// error with a randomly sampled magnitude; the input is never mutated.
class ErrorGen {
 public:
  virtual ~ErrorGen() = default;

  /// Returns a corrupted copy of `frame`. Which columns/rows are hit and how
  /// strongly is sampled from `rng` on every call.
  virtual common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                                  common::Rng& rng) const = 0;

  /// Short identifier, e.g. "missing_values".
  virtual std::string Name() const = 0;
};

/// Picks 1..n random distinct columns of the given type (the paper:
/// "randomly choose 1 to n columns"), where n is the number of such columns
/// capped at `max_columns` (0 = uncapped). Returns an empty vector if the
/// frame has no such columns. `explicit_columns` short-circuits the choice.
std::vector<std::string> PickColumns(const data::DataFrame& frame,
                                     data::ColumnType type, common::Rng& rng,
                                     const std::vector<std::string>&
                                         explicit_columns = {},
                                     size_t max_columns = 0);

/// Row indices forming a `fraction` sized uniform subsample of `num_rows`.
std::vector<size_t> PickRows(size_t num_rows, double fraction,
                             common::Rng& rng);

}  // namespace bbv::errors

#endif  // BBV_ERRORS_ERROR_GEN_H_
