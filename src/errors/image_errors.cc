#include "errors/image_errors.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace bbv::errors {

common::Result<data::DataFrame> GaussianImageNoise::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  data::DataFrame corrupted = frame;
  const std::vector<std::string> columns =
      PickColumns(frame, data::ColumnType::kImage, rng, columns_);
  for (const std::string& name : columns) {
    if (!corrupted.HasColumn(name)) {
      return common::Status::NotFound("no column named '" + name + "'");
    }
    data::Column& column = corrupted.ColumnByName(name);
    const double fraction = fraction_.Sample(rng);
    const double stddev = rng.Uniform(0.0, max_stddev_);
    for (size_t row = 0; row < column.size(); ++row) {
      data::CellValue& cell = column.cell(row);
      if (!cell.is_image() || !rng.Bernoulli(fraction)) continue;
      for (double& pixel : cell.MutableImage()) {
        pixel = std::clamp(pixel + rng.Gaussian(0.0, stddev), 0.0, 1.0);
      }
    }
  }
  return corrupted;
}

std::vector<double> ImageRotation::Rotate(const std::vector<double>& pixels,
                                          double angle_degrees) {
  const size_t side = static_cast<size_t>(
      std::lround(std::sqrt(static_cast<double>(pixels.size()))));
  BBV_CHECK_EQ(side * side, pixels.size());
  const double angle = angle_degrees * std::numbers::pi / 180.0;
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);
  const double center = (static_cast<double>(side) - 1.0) / 2.0;
  std::vector<double> rotated(pixels.size(), 0.0);
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      // Inverse mapping: sample the source pixel that lands at (r, c).
      const double dy = static_cast<double>(r) - center;
      const double dx = static_cast<double>(c) - center;
      const double source_row = center + cos_a * dy + sin_a * dx;
      const double source_col = center - sin_a * dy + cos_a * dx;
      const auto sr = static_cast<long>(std::lround(source_row));
      const auto sc = static_cast<long>(std::lround(source_col));
      if (sr >= 0 && sr < static_cast<long>(side) && sc >= 0 &&
          sc < static_cast<long>(side)) {
        rotated[r * side + c] =
            pixels[static_cast<size_t>(sr) * side + static_cast<size_t>(sc)];
      }
    }
  }
  return rotated;
}

common::Result<data::DataFrame> ImageRotation::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  data::DataFrame corrupted = frame;
  const std::vector<std::string> columns =
      PickColumns(frame, data::ColumnType::kImage, rng, columns_);
  for (const std::string& name : columns) {
    if (!corrupted.HasColumn(name)) {
      return common::Status::NotFound("no column named '" + name + "'");
    }
    data::Column& column = corrupted.ColumnByName(name);
    const double fraction = fraction_.Sample(rng);
    for (size_t row = 0; row < column.size(); ++row) {
      data::CellValue& cell = column.cell(row);
      if (!cell.is_image() || !rng.Bernoulli(fraction)) continue;
      const double angle =
          rng.Uniform(-max_angle_degrees_, max_angle_degrees_);
      cell = data::CellValue(Rotate(cell.AsImage(), angle));
    }
  }
  return corrupted;
}

}  // namespace bbv::errors
