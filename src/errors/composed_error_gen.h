#ifndef BBV_ERRORS_COMPOSED_ERROR_GEN_H_
#define BBV_ERRORS_COMPOSED_ERROR_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "errors/error_gen.h"

namespace bbv::errors {

/// Deterministic sequential composition of error generators: Corrupt applies
/// every component in order, each corrupting the previous component's
/// output. Unlike ErrorMixture (which samples a random component subset per
/// call), the composition is *fixed* — the same components run in the same
/// order on every call — which is what the adversarial corruption search
/// needs: a candidate composition must denote one reproducible point of the
/// corruption space, so that its measured estimation error is a property of
/// the composition rather than of a coin flip.
class ComposedErrorGen : public ErrorGen {
 public:
  /// `components` are applied front to back; 1..3 deep in practice (the
  /// search's compound corruptions), but any non-empty list is valid.
  explicit ComposedErrorGen(std::vector<std::shared_ptr<ErrorGen>> components)
      : components_(std::move(components)) {
    BBV_CHECK(!components_.empty()) << "ComposedErrorGen needs components";
    for (const std::shared_ptr<ErrorGen>& component : components_) {
      BBV_CHECK(component != nullptr);
    }
  }

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;

  /// "compose(a>b>c)" — the component names joined in application order.
  std::string Name() const override;

  size_t Depth() const { return components_.size(); }
  const std::vector<std::shared_ptr<ErrorGen>>& components() const {
    return components_;
  }

 private:
  std::vector<std::shared_ptr<ErrorGen>> components_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_COMPOSED_ERROR_GEN_H_
