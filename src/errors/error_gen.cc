#include "errors/error_gen.h"

#include <algorithm>

namespace bbv::errors {

std::vector<std::string> PickColumns(
    const data::DataFrame& frame, data::ColumnType type, common::Rng& rng,
    const std::vector<std::string>& explicit_columns, size_t max_columns) {
  if (!explicit_columns.empty()) return explicit_columns;
  std::vector<std::string> candidates = frame.ColumnNamesOfType(type);
  if (candidates.empty()) return {};
  // A single candidate admits exactly one non-empty subset: return it
  // without consuming random draws, so generators over one-column schemas
  // stay on the same stream as generators with explicit columns.
  if (candidates.size() == 1) return candidates;
  size_t pool = candidates.size();
  if (max_columns > 0) pool = std::min(pool, max_columns);
  const size_t count = 1 + rng.UniformInt(pool);
  rng.Shuffle(candidates);
  candidates.resize(count);
  return candidates;
}

std::vector<size_t> PickRows(size_t num_rows, double fraction,
                             common::Rng& rng) {
  // Corrupting everything needs no sampling: return the identity index set
  // without drawing a permutation. (Previously fraction >= 1 still consumed
  // num_rows draws to shuffle a set whose membership was already decided.)
  if (fraction >= 1.0) {
    std::vector<size_t> rows(num_rows);
    for (size_t i = 0; i < num_rows; ++i) rows[i] = i;
    return rows;
  }
  const size_t count = static_cast<size_t>(
      std::clamp(fraction, 0.0, 1.0) * static_cast<double>(num_rows));
  return rng.SampleWithoutReplacement(num_rows, count);
}

}  // namespace bbv::errors
