#include "errors/drift_scenario.h"

#include <cmath>
#include <utility>

#include "errors/distribution_shift.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "errors/text_errors.h"

namespace bbv::errors {

namespace {

common::Status ValidateScenarioOptions(const DriftScenarioOptions& options) {
  if (options.num_batches == 0) {
    return common::Status::InvalidArgument("num_batches must be >= 1");
  }
  if (options.batch_size == 0) {
    return common::Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.drift_onset > options.num_batches) {
    return common::Status::InvalidArgument(
        "drift_onset must be <= num_batches");
  }
  return common::Status::OK();
}

/// A clean batch: `batch_size` rows drawn with replacement from the pool.
data::Dataset SampleBatch(const data::Dataset& serving, size_t batch_size,
                          common::Rng& rng) {
  std::vector<size_t> rows;
  rows.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    rows.push_back(rng.UniformInt(serving.NumRows()));
  }
  return serving.SelectRows(rows);
}

/// Shared sampler for the corruption-blend scenarios: a clean draw whose
/// features get `severity` of their rows replaced by corrupted counterparts.
DriftScenario::BatchSampler BlendSampler(
    std::shared_ptr<const data::Dataset> serving,
    std::shared_ptr<const ErrorGen> corruption, size_t batch_size) {
  return [serving = std::move(serving), corruption = std::move(corruption),
          batch_size](size_t /*batch_index*/, double severity,
                      common::Rng& rng) -> common::Result<data::Dataset> {
    data::Dataset batch = SampleBatch(*serving, batch_size, rng);
    if (severity > 0.0 && corruption != nullptr) {
      BBV_ASSIGN_OR_RETURN(
          batch.features,
          BlendCorruption(batch.features, *corruption, severity, rng));
    }
    return batch;
  };
}

double PositiveFraction(const data::Dataset& dataset) {
  const std::vector<size_t> counts = data::ClassCounts(dataset);
  if (counts.size() != 2 || dataset.NumRows() == 0) return 0.0;
  return static_cast<double>(counts[1]) /
         static_cast<double>(dataset.NumRows());
}

/// Linear position of `batch_index` within the post-onset window, in (0, 1].
double RampPosition(size_t batch_index, const DriftScenarioOptions& options) {
  if (batch_index < options.drift_onset) return 0.0;
  const size_t span = options.num_batches - options.drift_onset;
  if (span <= 1) return 1.0;
  return static_cast<double>(batch_index - options.drift_onset + 1) /
         static_cast<double>(span);
}

}  // namespace

DriftScenario::DriftScenario(std::string name, DriftScenarioOptions options,
                             SeveritySchedule severity, BatchSampler sampler)
    : name_(std::move(name)),
      options_(options),
      severity_(std::move(severity)),
      sampler_(std::move(sampler)) {
  BBV_CHECK(severity_ != nullptr);
  BBV_CHECK(sampler_ != nullptr);
}

common::Result<data::Dataset> DriftScenario::MakeBatch(
    size_t batch_index, common::Rng& rng) const {
  BBV_RETURN_NOT_OK(ValidateScenarioOptions(options_));
  if (batch_index >= options_.num_batches) {
    return common::Status::InvalidArgument(
        "batch index " + std::to_string(batch_index) +
        " out of range for scenario '" + name_ + "' with " +
        std::to_string(options_.num_batches) + " batches");
  }
  return sampler_(batch_index, severity_(batch_index), rng);
}

double DriftScenario::SeverityAt(size_t batch_index) const {
  return severity_(batch_index);
}

bool DriftScenario::ExpectsDrift() const {
  return options_.drift_onset < options_.num_batches;
}

DriftScenario DriftScenario::NoDrift(
    std::shared_ptr<const data::Dataset> serving,
    DriftScenarioOptions options) {
  options.drift_onset = options.num_batches;  // never drifts
  const size_t batch_size = options.batch_size;
  return DriftScenario(
      "no_drift", options, [](size_t) { return 0.0; },
      BlendSampler(std::move(serving), nullptr, batch_size));
}

DriftScenario DriftScenario::Sudden(
    std::shared_ptr<const data::Dataset> serving,
    std::shared_ptr<const ErrorGen> corruption, double severity,
    DriftScenarioOptions options) {
  const size_t onset = options.drift_onset;
  const size_t batch_size = options.batch_size;
  return DriftScenario(
      "sudden",
      options,
      [onset, severity](size_t batch_index) {
        return batch_index >= onset ? severity : 0.0;
      },
      BlendSampler(std::move(serving), std::move(corruption), batch_size));
}

DriftScenario DriftScenario::GradualRamp(
    std::shared_ptr<const data::Dataset> serving,
    std::shared_ptr<const ErrorGen> corruption, double max_severity,
    DriftScenarioOptions options) {
  const DriftScenarioOptions captured = options;
  const size_t batch_size = options.batch_size;
  return DriftScenario(
      "gradual_ramp",
      options,
      [captured, max_severity](size_t batch_index) {
        return max_severity * RampPosition(batch_index, captured);
      },
      BlendSampler(std::move(serving), std::move(corruption), batch_size));
}

DriftScenario DriftScenario::Recurring(
    std::shared_ptr<const data::Dataset> serving,
    std::vector<std::shared_ptr<const ErrorGen>> components, double severity,
    size_t period_batches, DriftScenarioOptions options) {
  BBV_CHECK(!components.empty()) << "Recurring needs mixture components";
  BBV_CHECK(period_batches > 0) << "Recurring needs a positive period";
  const size_t onset = options.drift_onset;
  const size_t batch_size = options.batch_size;
  auto shared_components = std::make_shared<
      const std::vector<std::shared_ptr<const ErrorGen>>>(
      std::move(components));
  return DriftScenario(
      "recurring",
      options,
      [onset, severity](size_t batch_index) {
        return batch_index >= onset ? severity : 0.0;
      },
      [serving = std::move(serving), shared_components, onset, period_batches,
       batch_size](size_t batch_index, double batch_severity,
                   common::Rng& rng) -> common::Result<data::Dataset> {
        data::Dataset batch = SampleBatch(*serving, batch_size, rng);
        if (batch_severity > 0.0 && batch_index >= onset) {
          const size_t season = (batch_index - onset) / period_batches;
          const ErrorGen& component =
              *(*shared_components)[season % shared_components->size()];
          BBV_ASSIGN_OR_RETURN(batch.features,
                               BlendCorruption(batch.features, component,
                                               batch_severity, rng));
        }
        return batch;
      });
}

DriftScenario DriftScenario::FeedbackLoop(
    std::shared_ptr<const data::Dataset> serving,
    double target_positive_fraction, DriftScenarioOptions options) {
  const DriftScenarioOptions captured = options;
  const size_t batch_size = options.batch_size;
  const double base = PositiveFraction(*serving);
  return DriftScenario(
      "feedback_loop",
      options,
      [captured, base, target_positive_fraction](size_t batch_index) {
        return std::fabs(target_positive_fraction - base) *
               RampPosition(batch_index, captured);
      },
      [serving = std::move(serving), captured, base, target_positive_fraction,
       batch_size](size_t batch_index, double /*severity*/,
                   common::Rng& rng) -> common::Result<data::Dataset> {
        const double position = RampPosition(batch_index, captured);
        const double positive =
            base + (target_positive_fraction - base) * position;
        return ResampleLabelShift(*serving, positive, rng, batch_size);
      });
}

std::vector<DriftScenario> StandardDriftScenarios(
    std::shared_ptr<const data::Dataset> serving,
    DriftScenarioOptions options) {
  const std::vector<std::string> categorical =
      serving->features.ColumnNamesOfType(data::ColumnType::kCategorical);
  const std::vector<std::string> numeric =
      serving->features.ColumnNamesOfType(data::ColumnType::kNumeric);
  // Random columns, exact per-call severity: the blend fraction is the
  // severity knob, so the inner generators corrupt all their picked rows.
  const FractionRange kFull{1.0, 1.0};
  auto missing = std::make_shared<MissingValues>(categorical, kFull);
  auto scaling = std::make_shared<Scaling>(numeric, kFull);
  auto sign_flip = std::make_shared<SignFlip>(numeric, kFull);
  auto typos = std::make_shared<CategoricalTypos>(categorical, kFull);

  std::vector<DriftScenario> scenarios;
  scenarios.push_back(DriftScenario::NoDrift(serving, options));
  scenarios.push_back(
      DriftScenario::Sudden(serving, scaling, /*severity=*/0.8, options));
  scenarios.push_back(DriftScenario::GradualRamp(serving, missing,
                                                 /*max_severity=*/1.0,
                                                 options));
  // Scaling leads the rotation (a known error type the predictor was
  // meta-trained on) so the first season is detectable; the later seasons
  // rotate through the harder unknown-error regimes.
  scenarios.push_back(DriftScenario::Recurring(
      serving, {scaling, sign_flip, typos}, /*severity=*/0.8,
      /*period_batches=*/4, options));
  scenarios.push_back(DriftScenario::FeedbackLoop(
      serving, /*target_positive_fraction=*/0.85, options));
  return scenarios;
}

}  // namespace bbv::errors
