#include "errors/composed_error_gen.h"

namespace bbv::errors {

common::Result<data::DataFrame> ComposedErrorGen::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  data::DataFrame corrupted = frame;
  for (const std::shared_ptr<ErrorGen>& component : components_) {
    BBV_ASSIGN_OR_RETURN(corrupted, component->Corrupt(corrupted, rng));
  }
  return corrupted;
}

std::string ComposedErrorGen::Name() const {
  std::string name = "compose(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) name += '>';
    name += components_[i]->Name();
  }
  name += ')';
  return name;
}

}  // namespace bbv::errors
