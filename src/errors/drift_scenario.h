#ifndef BBV_ERRORS_DRIFT_SCENARIO_H_
#define BBV_ERRORS_DRIFT_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "errors/error_gen.h"

namespace bbv::errors {

struct DriftScenarioOptions {
  /// Length of the serving stream in batches.
  size_t num_batches = 40;
  /// Rows per batch, sampled (with replacement) from the serving pool.
  size_t batch_size = 400;
  /// First batch index at which the stream drifts. Batches before the onset
  /// are always clean draws from the serving pool.
  size_t drift_onset = 20;
};

/// A named serving-stream drift scenario: a deterministic schedule mapping
/// batch index -> drift severity plus a batch sampler that materializes the
/// drifted batch. Extends errors::distribution_shift from single one-shot
/// resamples to the *temporal* regimes a deployed monitor actually faces
/// (paper §7 "detecting drift over time"; see also the monitoring loop in
/// serve::ModelMonitor):
///
///   - no_drift        clean stream end to end (false-alarm measurement)
///   - sudden          step change: clean until the onset, then a fixed
///                     severity corruption on every later batch
///   - gradual_ramp    severity ramps linearly from 0 to max after the onset
///   - recurring       seasonal rotation: after the onset the stream cycles
///                     through mixture components, one per period
///   - feedback_loop   class-prior ramp via ResampleLabelShift — the
///                     selection-bias regime a model feeding its own
///                     training data creates
///
/// Determinism contract (PR-2 gate): MakeBatch consumes only the Rng the
/// caller passes, so a caller that pre-forks one stream per batch index gets
/// a byte-identical stream at any BBV_THREADS.
class DriftScenario {
 public:
  using SeveritySchedule = std::function<double(size_t batch_index)>;
  using BatchSampler = std::function<common::Result<data::Dataset>(
      size_t batch_index, double severity, common::Rng& rng)>;

  /// Prefer the factories below; the constructor is exposed for custom
  /// scenarios (benches composing their own schedules).
  DriftScenario(std::string name, DriftScenarioOptions options,
                SeveritySchedule severity, BatchSampler sampler);

  /// Materializes batch `batch_index` of the stream. Out-of-range indices
  /// return InvalidArgument.
  common::Result<data::Dataset> MakeBatch(size_t batch_index,
                                          common::Rng& rng) const;

  /// The scheduled severity for a batch (0 = clean draw). Exposed so tests
  /// can assert schedule shapes without materializing data.
  double SeverityAt(size_t batch_index) const;

  const std::string& name() const { return name_; }
  size_t num_batches() const { return options_.num_batches; }
  size_t batch_size() const { return options_.batch_size; }
  size_t drift_onset() const { return options_.drift_onset; }
  /// True when the stream stays clean (no batch should raise an alarm).
  bool ExpectsDrift() const;

  /// Clean stream: every batch is an undrifted draw from the serving pool.
  static DriftScenario NoDrift(std::shared_ptr<const data::Dataset> serving,
                               DriftScenarioOptions options = {});

  /// Step change at the onset: `corruption` blended into every batch at the
  /// fixed `severity` (fraction of rows corrupted) from the onset on.
  static DriftScenario Sudden(std::shared_ptr<const data::Dataset> serving,
                              std::shared_ptr<const ErrorGen> corruption,
                              double severity,
                              DriftScenarioOptions options = {});

  /// Severity ramps linearly from ~0 at the onset to `max_severity` at the
  /// final batch — the slow-degradation regime where early batches are
  /// near-indistinguishable from clean data.
  static DriftScenario GradualRamp(std::shared_ptr<const data::Dataset> serving,
                                   std::shared_ptr<const ErrorGen> corruption,
                                   double max_severity,
                                   DriftScenarioOptions options = {});

  /// Seasonal mixture rotation: after the onset the stream cycles through
  /// `components` (one per `period_batches`-long season) at the fixed
  /// severity, returning to the first component after the last — the
  /// recurring-drift regime where each season looks different.
  static DriftScenario Recurring(
      std::shared_ptr<const data::Dataset> serving,
      std::vector<std::shared_ptr<const ErrorGen>> components, double severity,
      size_t period_batches, DriftScenarioOptions options = {});

  /// Class-prior ramp (binary datasets): batches are label-shift resamples
  /// whose positive fraction moves linearly from the serving pool's own
  /// prior at the onset to `target_positive_fraction` at the final batch.
  /// Severity is reported as |current - base| prior distance.
  static DriftScenario FeedbackLoop(
      std::shared_ptr<const data::Dataset> serving,
      double target_positive_fraction, DriftScenarioOptions options = {});

 private:
  std::string name_;
  DriftScenarioOptions options_;
  SeveritySchedule severity_;
  BatchSampler sampler_;
};

/// The standard scenario library the drift bench replays: one scenario per
/// regime above, built over tabular corruption generators appropriate for
/// `serving`'s schema, in a fixed deterministic order.
std::vector<DriftScenario> StandardDriftScenarios(
    std::shared_ptr<const data::Dataset> serving,
    DriftScenarioOptions options = {});

}  // namespace bbv::errors

#endif  // BBV_ERRORS_DRIFT_SCENARIO_H_
