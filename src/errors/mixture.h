#ifndef BBV_ERRORS_MIXTURE_H_
#define BBV_ERRORS_MIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "errors/error_gen.h"

namespace bbv::errors {

/// Randomly chosen mixture of error types (paper §6.2): on each Corrupt
/// call, every component generator is applied independently with the given
/// inclusion probability (each drawing its own random magnitude); at least
/// one component is always applied so the mixture never degenerates to the
/// identity unless it has no components.
class ErrorMixture : public ErrorGen {
 public:
  explicit ErrorMixture(std::vector<std::shared_ptr<ErrorGen>> components,
                        double inclusion_probability = 0.5)
      : components_(std::move(components)),
        inclusion_probability_(inclusion_probability) {
    BBV_CHECK(!components_.empty()) << "ErrorMixture needs components";
  }

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "mixture"; }

  size_t NumComponents() const { return components_.size(); }

 private:
  std::vector<std::shared_ptr<ErrorGen>> components_;
  double inclusion_probability_;
};

/// Applies an inner generator to a random subset of the rows, with the
/// subset fraction drawn from `fraction` on every call. With the default
/// U(0,1) range this produces the full severity spectrum from benign
/// (almost no rows corrupted) to catastrophic (all rows corrupted) — how
/// the paper corrupts serving data "with randomly sampled probabilities".
class RandomSubsetCorruption : public ErrorGen {
 public:
  explicit RandomSubsetCorruption(std::shared_ptr<ErrorGen> inner,
                                  FractionRange fraction = {})
      : inner_(std::move(inner)), fraction_(fraction) {
    BBV_CHECK(inner_ != nullptr);
  }

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "subset_" + inner_->Name(); }

 private:
  std::shared_ptr<ErrorGen> inner_;
  FractionRange fraction_;
};

/// Blends corrupted rows into clean data (paper §6.1.2): returns a frame
/// where a `fraction` sized random subset of the rows is replaced by their
/// corrupted counterparts from `generator` and the rest stay clean. Used to
/// emulate partially observed / unknown error distributions.
common::Result<data::DataFrame> BlendCorruption(const data::DataFrame& frame,
                                                const ErrorGen& generator,
                                                double fraction,
                                                common::Rng& rng);

}  // namespace bbv::errors

#endif  // BBV_ERRORS_MIXTURE_H_
