#include "errors/text_errors.h"

#include "common/string_util.h"

namespace bbv::errors {

namespace {

/// Corrupts a sampled fraction of the non-NA string cells of each chosen
/// column of the given type with `rewrite`.
template <typename Rewrite>
common::Result<data::DataFrame> MutateStringCells(
    const data::DataFrame& frame, data::ColumnType type,
    const std::vector<std::string>& explicit_columns,
    const FractionRange& fraction_range, common::Rng& rng, Rewrite rewrite,
    size_t max_columns = 0) {
  data::DataFrame corrupted = frame;
  const std::vector<std::string> columns =
      PickColumns(frame, type, rng, explicit_columns, max_columns);
  for (const std::string& name : columns) {
    if (!corrupted.HasColumn(name)) {
      return common::Status::NotFound("no column named '" + name + "'");
    }
    data::Column& column = corrupted.ColumnByName(name);
    const double fraction = fraction_range.Sample(rng);
    for (size_t row = 0; row < column.size(); ++row) {
      data::CellValue& cell = column.cell(row);
      if (!cell.is_string() || !rng.Bernoulli(fraction)) continue;
      cell = data::CellValue(rewrite(cell.AsString(), rng));
    }
  }
  return corrupted;
}

}  // namespace

std::string AdversarialLeetspeak::ToLeetspeak(const std::string& text) {
  std::string result = common::ToLower(text);
  for (char& c : result) {
    switch (c) {
      case 'e': c = '3'; break;
      case 'l': c = '1'; break;
      case 'o': c = '0'; break;
      case 'a': c = '4'; break;
      case 't': c = '7'; break;
      case 's': c = '5'; break;
      case 'i': c = '1'; break;
      default: break;
    }
  }
  return result;
}

common::Result<data::DataFrame> AdversarialLeetspeak::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  return MutateStringCells(
      frame, data::ColumnType::kText, columns_, fraction_, rng,
      [](const std::string& text, common::Rng&) { return ToLeetspeak(text); });
}

std::string CategoricalTypos::IntroduceTypo(const std::string& value,
                                            common::Rng& rng) {
  if (value.empty()) return value;
  std::string result = value;
  const size_t kind = rng.UniformInt(static_cast<size_t>(3));
  const size_t position = rng.UniformInt(result.size());
  switch (kind) {
    case 0:  // swap adjacent characters
      if (result.size() >= 2) {
        const size_t p = std::min(position, result.size() - 2);
        std::swap(result[p], result[p + 1]);
        if (result == value && result.size() >= 2) result[0] = '#';
        break;
      }
      [[fallthrough]];
    case 1: {  // duplicate a character
      const char duplicated = result[position];
      result.insert(result.begin() + static_cast<ptrdiff_t>(position),
                    duplicated);
      break;
    }
    default:  // drop a character (or mark, if single-char)
      if (result.size() >= 2) {
        result.erase(result.begin() + static_cast<ptrdiff_t>(position));
      } else {
        result = "#" + result;
      }
      break;
  }
  return result;
}

common::Result<data::DataFrame> CategoricalTypos::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  return MutateStringCells(
      frame, data::ColumnType::kCategorical, columns_, fraction_, rng,
      [](const std::string& value, common::Rng& cell_rng) {
        return IntroduceTypo(value, cell_rng);
      },
      max_columns_);
}

std::string EncodingErrors::Mangle(const std::string& value) {
  std::string result = common::ReplaceAll(value, "E", "\xC3\x89");  // É
  result = common::ReplaceAll(result, "e", "\xC3\xA9");             // é
  result = common::ReplaceAll(result, "o", "\xC5\x93");             // œ
  result = common::ReplaceAll(result, "u", "\xC3\xBC");             // ü
  return result;
}

common::Result<data::DataFrame> EncodingErrors::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  return MutateStringCells(
      frame, data::ColumnType::kCategorical, columns_, fraction_, rng,
      [](const std::string& value, common::Rng&) { return Mangle(value); });
}

}  // namespace bbv::errors
