#include "errors/distribution_shift.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"

namespace bbv::errors {

common::Result<data::Dataset> ResampleLabelShift(const data::Dataset& dataset,
                                                 double positive_fraction,
                                                 common::Rng& rng,
                                                 size_t size) {
  if (dataset.num_classes != 2) {
    return common::Status::InvalidArgument(
        "label shift resampling supports binary datasets only");
  }
  if (positive_fraction < 0.0 || positive_fraction > 1.0) {
    return common::Status::InvalidArgument(
        "positive_fraction must be in [0, 1]");
  }
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t row = 0; row < dataset.NumRows(); ++row) {
    (dataset.labels[row] == 1 ? positives : negatives).push_back(row);
  }
  if (positives.empty() || negatives.empty()) {
    return common::Status::FailedPrecondition(
        "both classes must be present to shift the label distribution");
  }
  const size_t total = size == 0 ? dataset.NumRows() : size;
  std::vector<size_t> rows;
  rows.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const bool positive = rng.Bernoulli(positive_fraction);
    const std::vector<size_t>& pool = positive ? positives : negatives;
    rows.push_back(pool[rng.UniformInt(pool.size())]);
  }
  return dataset.SelectRows(rows);
}

common::Result<data::Dataset> ResampleCovariateShift(
    const data::Dataset& dataset, const std::string& numeric_column,
    double strength, common::Rng& rng, size_t size) {
  if (!dataset.features.HasColumn(numeric_column)) {
    return common::Status::NotFound("no column named '" + numeric_column +
                                    "'");
  }
  const data::Column& column = dataset.features.ColumnByName(numeric_column);
  if (column.type() != data::ColumnType::kNumeric) {
    return common::Status::InvalidArgument(
        "column '" + numeric_column + "' is not numeric");
  }
  const std::vector<double> values = column.NumericValues();
  if (values.size() != dataset.NumRows()) {
    return common::Status::FailedPrecondition(
        "covariate-shift column must have no missing values");
  }
  const double mean = stats::Mean(values);
  double stddev = stats::StdDev(values);
  if (stddev <= 0.0) stddev = 1.0;

  // Sampling weights exp(strength * z), clipped for numerical sanity.
  std::vector<double> cumulative(values.size());
  double total_weight = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double z = (values[i] - mean) / stddev;
    total_weight += std::exp(std::clamp(strength * z, -30.0, 30.0));
    cumulative[i] = total_weight;
  }
  const size_t total = size == 0 ? dataset.NumRows() : size;
  std::vector<size_t> rows;
  rows.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const double u = rng.Uniform() * total_weight;
    // Binary search the cumulative weights.
    size_t low = 0;
    size_t high = cumulative.size() - 1;
    while (low < high) {
      const size_t middle = (low + high) / 2;
      if (cumulative[middle] < u) {
        low = middle + 1;
      } else {
        high = middle;
      }
    }
    rows.push_back(low);
  }
  return dataset.SelectRows(rows);
}

}  // namespace bbv::errors
