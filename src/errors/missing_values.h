#ifndef BBV_ERRORS_MISSING_VALUES_H_
#define BBV_ERRORS_MISSING_VALUES_H_

#include <string>
#include <vector>

#include "errors/error_gen.h"
#include "ml/black_box.h"

namespace bbv::errors {

/// Introduces missing values (NA) at random into 1..n randomly chosen
/// categorical columns — the paper's canonical data-integration bug.
class MissingValues : public ErrorGen {
 public:
  /// `columns` empty = choose random categorical columns per call;
  /// `fraction` is the range of per-column corruption rates.
  explicit MissingValues(std::vector<std::string> columns = {},
                         FractionRange fraction = {},
                         data::ColumnType column_type =
                             data::ColumnType::kCategorical)
      : columns_(std::move(columns)),
        fraction_(fraction),
        column_type_(column_type) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "missing_values"; }

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  data::ColumnType column_type_;
};

/// Active-learning flavored missing values (paper §6: "model-entropy based
/// missing values"): ranks rows by the black box model's prediction
/// certainty 1 - p_max and discards values from the *easiest* rows, which
/// specifically targets the examples the model is most confident about.
class EntropyBasedMissing : public ErrorGen {
 public:
  /// `model` must outlive the generator.
  EntropyBasedMissing(const ml::BlackBox* model,
                      std::vector<std::string> columns = {},
                      FractionRange fraction = {})
      : model_(model), columns_(std::move(columns)), fraction_(fraction) {
    BBV_CHECK(model_ != nullptr);
  }

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "entropy_missing"; }

 private:
  const ml::BlackBox* model_;
  std::vector<std::string> columns_;
  FractionRange fraction_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_MISSING_VALUES_H_
