#ifndef BBV_ERRORS_IMAGE_ERRORS_H_
#define BBV_ERRORS_IMAGE_ERRORS_H_

#include <string>
#include <vector>

#include "errors/error_gen.h"

namespace bbv::errors {

/// Image noise (paper §6): adds zero-mean gaussian noise to a random
/// proportion of the images, with the noise standard deviation drawn
/// uniformly from [0, max_stddev] per invocation. Pixels are clipped back
/// to [0, 1].
class GaussianImageNoise : public ErrorGen {
 public:
  explicit GaussianImageNoise(std::vector<std::string> columns = {},
                              FractionRange fraction = {},
                              double max_stddev = 0.5)
      : columns_(std::move(columns)),
        fraction_(fraction),
        max_stddev_(max_stddev) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "image_noise"; }

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  double max_stddev_;
};

/// Image rotation (paper §6): rotates a random proportion of the images by
/// randomly chosen angles (nearest-neighbor resampling around the center;
/// out-of-frame pixels become 0).
class ImageRotation : public ErrorGen {
 public:
  explicit ImageRotation(std::vector<std::string> columns = {},
                         FractionRange fraction = {},
                         double max_angle_degrees = 180.0)
      : columns_(std::move(columns)),
        fraction_(fraction),
        max_angle_degrees_(max_angle_degrees) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "image_rotation"; }

  /// Rotates a square image by `angle_degrees` (exposed for tests).
  static std::vector<double> Rotate(const std::vector<double>& pixels,
                                    double angle_degrees);

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  double max_angle_degrees_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_IMAGE_ERRORS_H_
