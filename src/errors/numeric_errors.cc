#include "errors/numeric_errors.h"

#include "stats/descriptive.h"

namespace bbv::errors {

namespace {

/// Applies `mutate(value, rng)` to a sampled fraction of the non-NA numeric
/// cells of each chosen column.
template <typename Mutator>
common::Result<data::DataFrame> MutateNumericCells(
    const data::DataFrame& frame, const std::vector<std::string>& explicit_columns,
    const FractionRange& fraction_range, common::Rng& rng, Mutator mutate,
    size_t max_columns = 0) {
  data::DataFrame corrupted = frame;
  const std::vector<std::string> columns = PickColumns(
      frame, data::ColumnType::kNumeric, rng, explicit_columns, max_columns);
  for (const std::string& name : columns) {
    if (!corrupted.HasColumn(name)) {
      return common::Status::NotFound("no column named '" + name + "'");
    }
    data::Column& column = corrupted.ColumnByName(name);
    if (column.type() != data::ColumnType::kNumeric) {
      return common::Status::InvalidArgument(
          "column '" + name + "' is not numeric");
    }
    const double fraction = fraction_range.Sample(rng);
    mutate.BeginColumn(column, rng);
    for (size_t row = 0; row < column.size(); ++row) {
      data::CellValue& cell = column.cell(row);
      if (!cell.is_numeric() || !rng.Bernoulli(fraction)) continue;
      cell = data::CellValue(mutate.Apply(cell.AsDouble(), rng));
    }
  }
  return corrupted;
}

}  // namespace

common::Result<data::DataFrame> NumericOutliers::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  struct Mutator {
    double min_scale;
    double max_scale;
    double noise_stddev = 0.0;

    void BeginColumn(const data::Column& column, common::Rng& rng) {
      const std::vector<double> values = column.NumericValues();
      const double column_stddev =
          values.size() > 1 ? stats::StdDev(values) : 1.0;
      noise_stddev = rng.Uniform(min_scale, max_scale) *
                     (column_stddev > 0.0 ? column_stddev : 1.0);
    }
    double Apply(double value, common::Rng& rng) const {
      return rng.Gaussian(value, noise_stddev);
    }
  };
  return MutateNumericCells(frame, columns_, fraction_, rng,
                            Mutator{min_scale_, max_scale_});
}

common::Result<data::DataFrame> Scaling::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  struct Mutator {
    const std::vector<double>* factors;
    double factor = 1.0;

    void BeginColumn(const data::Column&, common::Rng& rng) {
      factor = rng.Choice(*factors);
    }
    double Apply(double value, common::Rng&) const { return value * factor; }
  };
  if (factors_.empty()) {
    return common::Status::InvalidArgument("Scaling needs at least one factor");
  }
  return MutateNumericCells(frame, columns_, fraction_, rng,
                            Mutator{&factors_, 1.0});
}

common::Result<data::DataFrame> NumericSmearing::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  struct Mutator {
    double max_change;

    void BeginColumn(const data::Column&, common::Rng&) {}
    double Apply(double value, common::Rng& rng) const {
      return value * (1.0 + rng.Uniform(-max_change, max_change));
    }
  };
  return MutateNumericCells(frame, columns_, fraction_, rng,
                            Mutator{max_relative_change_}, max_columns_);
}

common::Result<data::DataFrame> SignFlip::Corrupt(
    const data::DataFrame& frame, common::Rng& rng) const {
  struct Mutator {
    void BeginColumn(const data::Column&, common::Rng&) {}
    double Apply(double value, common::Rng&) const { return -value; }
  };
  return MutateNumericCells(frame, columns_, fraction_, rng, Mutator{},
                            max_columns_);
}

}  // namespace bbv::errors
