#include "errors/corruption_search.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "errors/composed_error_gen.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"
#include "errors/text_errors.h"

namespace bbv::errors {

namespace {

/// Which column subsets an atom generator applies to.
enum class AtomColumns {
  kCategorical,
  kNumeric,
  kCategoricalNumericPair,
};

struct AtomKind {
  AtomColumns columns;
  std::shared_ptr<ErrorGen> (*build)(const std::vector<std::string>& columns,
                                     FractionRange fraction);
};

/// The composition-space registry. Ordered map (det-iter rule): the atom
/// pool — and hence the sampled population and every downstream result — is
/// built by iterating it, so the order must be deterministic.
const std::map<std::string, AtomKind>& AtomRegistry() {
  static const std::map<std::string, AtomKind> kRegistry = {
      {"missing_values",
       {AtomColumns::kCategorical,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<MissingValues>(columns, fraction);
        }}},
      {"typos",
       {AtomColumns::kCategorical,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<CategoricalTypos>(columns, fraction);
        }}},
      {"outliers",
       {AtomColumns::kNumeric,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<NumericOutliers>(columns, fraction);
        }}},
      {"scaling",
       {AtomColumns::kNumeric,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<Scaling>(columns, fraction);
        }}},
      {"smearing",
       {AtomColumns::kNumeric,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<NumericSmearing>(columns, fraction);
        }}},
      {"sign_flip",
       {AtomColumns::kNumeric,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<SignFlip>(columns, fraction);
        }}},
      {"swapped_columns",
       {AtomColumns::kCategoricalNumericPair,
        [](const std::vector<std::string>& columns, FractionRange fraction)
            -> std::shared_ptr<ErrorGen> {
          return std::make_shared<SwappedColumns>(
              std::make_pair(columns[0], columns[1]), fraction);
        }}},
  };
  return kRegistry;
}

std::string FormatFraction(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", fraction);
  return buffer;
}

/// Running probe statistics for one candidate.
struct CandidateStats {
  double sum_abs_error = 0.0;
  double sum_actual = 0.0;
  double sum_estimated = 0.0;
  int probes = 0;
  int rounds_evaluated = 0;

  double MeanAbsError() const {
    return probes > 0 ? sum_abs_error / probes : 0.0;
  }
};

common::Status ValidateOptions(const CorruptionSearch::Options& options) {
  if (options.max_depth < 1 || options.max_depth > 8) {
    return common::Status::InvalidArgument("max_depth must be in [1, 8]");
  }
  if (options.initial_candidates == 0) {
    return common::Status::InvalidArgument("initial_candidates must be >= 1");
  }
  if (options.probe_repetitions < 1) {
    return common::Status::InvalidArgument("probe_repetitions must be >= 1");
  }
  if (!(options.survivor_fraction > 0.0) || options.survivor_fraction > 1.0) {
    return common::Status::InvalidArgument(
        "survivor_fraction must be in (0, 1]");
  }
  if (options.max_rounds < 1 || options.max_rounds > 16) {
    return common::Status::InvalidArgument("max_rounds must be in [1, 16]");
  }
  if (options.fractions.empty()) {
    return common::Status::InvalidArgument("need at least one fixed fraction");
  }
  for (double fraction : options.fractions) {
    if (!std::isfinite(fraction) || fraction < 0.0 || fraction > 1.0) {
      return common::Status::InvalidArgument("fractions must be in [0, 1]");
    }
  }
  return common::Status::OK();
}

/// Probes every (active candidate, repetition) pair in one deterministic
/// ParallelFor and folds the measurements into `stats` serially in task
/// order. `round_rng` is forked into one stream per task before dispatch.
common::Status ProbeActiveCandidates(
    const data::DataFrame& base, const CorruptionSearch::ErrorProbe& probe,
    const std::vector<CorruptionSpec>& candidates,
    const std::vector<size_t>& active, int repetitions,
    common::Rng& round_rng, std::vector<CandidateStats>& stats,
    size_t& total_probes) {
  std::vector<std::shared_ptr<ErrorGen>> generators;
  generators.reserve(active.size());
  for (size_t candidate : active) {
    BBV_ASSIGN_OR_RETURN(std::shared_ptr<ErrorGen> generator,
                         CorruptionSearch::BuildGenerator(
                             candidates[candidate]));
    generators.push_back(std::move(generator));
  }
  const size_t reps = static_cast<size_t>(repetitions);
  const size_t tasks = active.size() * reps;
  std::vector<common::Rng> task_rngs = round_rng.ForkStreams(tasks);
  std::vector<CorruptionSearch::ProbeResult> slots(tasks);
  BBV_RETURN_NOT_OK(common::ParallelFor(
      tasks, [&](size_t task) -> common::Status {
        const size_t slot = task / reps;
        BBV_ASSIGN_OR_RETURN(
            data::DataFrame corrupted,
            generators[slot]->Corrupt(base, task_rngs[task]));
        BBV_ASSIGN_OR_RETURN(CorruptionSearch::ProbeResult result,
                             probe(corrupted));
        if (!std::isfinite(result.estimated_score) ||
            !std::isfinite(result.actual_score)) {
          return common::Status::InvalidArgument(
              "probe returned a non-finite score for composition '" +
              candidates[active[slot]].Key() + "'");
        }
        slots[task] = result;
        return common::Status::OK();
      }));
  for (size_t task = 0; task < tasks; ++task) {
    CandidateStats& candidate_stats = stats[active[task / reps]];
    candidate_stats.sum_abs_error +=
        std::fabs(slots[task].estimated_score - slots[task].actual_score);
    candidate_stats.sum_actual += slots[task].actual_score;
    candidate_stats.sum_estimated += slots[task].estimated_score;
    ++candidate_stats.probes;
  }
  total_probes += tasks;
  return common::Status::OK();
}

CorruptionSearch::RunResult CollectFindings(
    const std::vector<CorruptionSpec>& candidates,
    const std::vector<CandidateStats>& stats, size_t total_probes) {
  CorruptionSearch::RunResult result;
  result.total_probes = total_probes;
  result.findings.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    CorruptionSearch::Finding finding;
    finding.spec = candidates[i];
    finding.probes = stats[i].probes;
    finding.rounds_survived = stats[i].rounds_evaluated;
    if (stats[i].probes > 0) {
      finding.mean_abs_error = stats[i].MeanAbsError();
      finding.mean_actual_score = stats[i].sum_actual / stats[i].probes;
      finding.mean_estimated_score = stats[i].sum_estimated / stats[i].probes;
    }
    result.findings.push_back(std::move(finding));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const CorruptionSearch::Finding& a,
               const CorruptionSearch::Finding& b) {
              if (a.mean_abs_error != b.mean_abs_error) {
                return a.mean_abs_error > b.mean_abs_error;
              }
              return a.spec.Key() < b.spec.Key();
            });
  return result;
}

}  // namespace

std::string CorruptionSpec::Key() const {
  std::string key;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) key += '>';
    key += atoms[i].generator;
    key += '[';
    for (size_t c = 0; c < atoms[i].columns.size(); ++c) {
      if (c > 0) key += ',';
      key += atoms[i].columns[c];
    }
    key += "]@";
    key += FormatFraction(atoms[i].fraction);
  }
  return key;
}

common::Result<CorruptionSpec> ParseCorruptionSpec(const std::string& text) {
  CorruptionSpec spec;
  size_t position = 0;
  while (position < text.size()) {
    const size_t open = text.find('[', position);
    if (open == std::string::npos || open == position) {
      return common::Status::InvalidArgument(
          "corruption spec atom missing generator name: '" + text + "'");
    }
    const size_t close = text.find(']', open);
    if (close == std::string::npos || close + 1 >= text.size() ||
        text[close + 1] != '@') {
      return common::Status::InvalidArgument(
          "corruption spec atom missing ']@fraction': '" + text + "'");
    }
    CorruptionAtomSpec atom;
    atom.generator = text.substr(position, open - position);
    if (close > open + 1 && text[close - 1] == ',') {
      return common::Status::InvalidArgument(
          "corruption spec atom has a trailing comma: '" + text + "'");
    }
    size_t column_start = open + 1;
    while (column_start < close) {
      size_t comma = text.find(',', column_start);
      if (comma == std::string::npos || comma > close) comma = close;
      if (comma == column_start) {
        return common::Status::InvalidArgument(
            "corruption spec atom has an empty column name: '" + text + "'");
      }
      atom.columns.push_back(text.substr(column_start, comma - column_start));
      column_start = comma + 1;
    }
    if (atom.columns.empty()) {
      return common::Status::InvalidArgument(
          "corruption spec atom has no columns: '" + text + "'");
    }
    size_t fraction_end = text.find('>', close);
    if (fraction_end == std::string::npos) fraction_end = text.size();
    const std::string fraction_text =
        text.substr(close + 2, fraction_end - close - 2);
    char* end = nullptr;
    atom.fraction = std::strtod(fraction_text.c_str(), &end);
    if (fraction_text.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(atom.fraction) || atom.fraction < 0.0 ||
        atom.fraction > 1.0) {
      return common::Status::InvalidArgument(
          "corruption spec atom has a bad fraction '" + fraction_text + "'");
    }
    spec.atoms.push_back(std::move(atom));
    if (fraction_end < text.size() && fraction_end + 1 == text.size()) {
      return common::Status::InvalidArgument(
          "corruption spec has a trailing '>': '" + text + "'");
    }
    position = fraction_end + (fraction_end < text.size() ? 1 : 0);
  }
  if (spec.atoms.empty()) {
    return common::Status::InvalidArgument("empty corruption spec");
  }
  return spec;
}

common::Result<std::shared_ptr<ErrorGen>> CorruptionSearch::BuildGenerator(
    const CorruptionSpec& spec) {
  if (spec.atoms.empty()) {
    return common::Status::InvalidArgument("empty corruption spec");
  }
  std::vector<std::shared_ptr<ErrorGen>> components;
  components.reserve(spec.atoms.size());
  for (const CorruptionAtomSpec& atom : spec.atoms) {
    const auto entry = AtomRegistry().find(atom.generator);
    if (entry == AtomRegistry().end()) {
      return common::Status::NotFound("unknown corruption atom generator '" +
                                      atom.generator + "'");
    }
    if (atom.columns.empty()) {
      return common::Status::InvalidArgument("corruption atom '" +
                                             atom.generator +
                                             "' has no columns");
    }
    if (entry->second.columns == AtomColumns::kCategoricalNumericPair &&
        atom.columns.size() != 2) {
      return common::Status::InvalidArgument(
          "corruption atom '" + atom.generator +
          "' needs exactly two columns (categorical, numeric)");
    }
    if (!std::isfinite(atom.fraction) || atom.fraction < 0.0 ||
        atom.fraction > 1.0) {
      return common::Status::InvalidArgument(
          "corruption atom '" + atom.generator + "' fraction out of [0, 1]");
    }
    components.push_back(entry->second.build(
        atom.columns, FractionRange{atom.fraction, atom.fraction}));
  }
  return std::static_pointer_cast<ErrorGen>(
      std::make_shared<ComposedErrorGen>(std::move(components)));
}

std::vector<CorruptionAtomSpec> CorruptionSearch::BuildAtomPool(
    const data::DataFrame& base) const {
  const std::vector<std::string> categorical =
      base.ColumnNamesOfType(data::ColumnType::kCategorical);
  const std::vector<std::string> numeric =
      base.ColumnNamesOfType(data::ColumnType::kNumeric);
  std::vector<CorruptionAtomSpec> pool;
  for (const auto& [name, kind] : AtomRegistry()) {
    std::vector<std::vector<std::string>> subsets;
    switch (kind.columns) {
      case AtomColumns::kCategorical:
      case AtomColumns::kNumeric: {
        const std::vector<std::string>& columns =
            kind.columns == AtomColumns::kCategorical ? categorical : numeric;
        for (const std::string& column : columns) {
          subsets.push_back({column});
        }
        if (columns.size() > 1) subsets.push_back(columns);
        break;
      }
      case AtomColumns::kCategoricalNumericPair: {
        for (const std::string& cat : categorical) {
          for (const std::string& num : numeric) {
            subsets.push_back({cat, num});
          }
        }
        break;
      }
    }
    for (const std::vector<std::string>& subset : subsets) {
      for (double fraction : options_.fractions) {
        pool.push_back({name, subset, fraction});
      }
    }
  }
  return pool;
}

std::vector<std::string> CorruptionSearch::RegisteredAtomNames() {
  std::vector<std::string> names;
  names.reserve(AtomRegistry().size());
  for (const auto& [name, kind] : AtomRegistry()) {
    names.push_back(name);
  }
  return names;
}

common::Result<CorruptionSearch::RunResult> CorruptionSearch::Run(
    const data::DataFrame& base, const ErrorProbe& probe) const {
  const common::telemetry::TraceSpan span("corruption_search.run");
  BBV_RETURN_NOT_OK(ValidateOptions(options_));
  if (probe == nullptr) {
    return common::Status::InvalidArgument("null error probe");
  }
  const std::vector<CorruptionAtomSpec> pool = BuildAtomPool(base);
  if (pool.empty()) {
    return common::Status::InvalidArgument(
        "frame has no corruptible columns for any registered atom");
  }
  common::Rng rng(options_.seed);

  // Population: half the slots go to depth-1 atoms, the rest to random
  // compounds up to max_depth. Depth-1 slots are filled broad-first: atoms
  // corrupting a full per-type column set carry the most damage per probe, so
  // they get guaranteed slots (stride-sampled across fractions when there are
  // more than fit) before the single-column and pair atoms are stride-sampled
  // across the remaining pool. A plain pool-prefix fill would spend the whole
  // population on the first registry entries and never probe a compound; a
  // plain stride would usually skip every broad atom because singles and
  // pairs dominate the pool.
  const auto& registry = AtomRegistry();
  std::vector<size_t> broad_atoms;
  std::vector<size_t> narrow_atoms;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto entry = registry.find(pool[i].generator);
    const bool broad =
        entry != registry.end() &&
        entry->second.columns != AtomColumns::kCategoricalNumericPair &&
        pool[i].columns.size() > 1;
    (broad ? broad_atoms : narrow_atoms).push_back(i);
  }
  std::vector<CorruptionSpec> candidates;
  std::set<std::string> seen;
  const size_t depth1_budget =
      options_.max_depth > 1
          ? std::max<size_t>(1, options_.initial_candidates / 2)
          : options_.initial_candidates;
  auto add_depth1 = [&](const std::vector<size_t>& source, size_t budget) {
    const size_t count = std::min(budget, source.size());
    for (size_t i = 0; i < count; ++i) {
      CorruptionSpec spec;
      spec.atoms.push_back(pool[source[i * source.size() / count]]);
      if (seen.insert(spec.Key()).second) {
        candidates.push_back(std::move(spec));
      }
    }
  };
  add_depth1(broad_atoms, depth1_budget);
  if (depth1_budget > broad_atoms.size()) {
    add_depth1(narrow_atoms, depth1_budget - broad_atoms.size());
  }
  if (options_.max_depth > 1) {
    const size_t max_attempts = 64 * options_.initial_candidates;
    size_t attempts = 0;
    while (candidates.size() < options_.initial_candidates &&
           attempts < max_attempts) {
      ++attempts;
      const size_t depth =
          2 + rng.UniformInt(static_cast<size_t>(options_.max_depth) - 1);
      CorruptionSpec spec;
      for (size_t d = 0; d < depth; ++d) {
        spec.atoms.push_back(pool[rng.UniformInt(pool.size())]);
      }
      if (seen.insert(spec.Key()).second) {
        candidates.push_back(std::move(spec));
      }
    }
  }
  common::telemetry::IncrementCounter("corruption_search.candidates",
                                      candidates.size());

  // Successive halving: probe, rank by accumulated mean error, keep the top
  // survivor_fraction, double the repetitions, repeat.
  std::vector<CandidateStats> stats(candidates.size());
  std::vector<size_t> active(candidates.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;
  size_t total_probes = 0;
  for (int round = 0; round < options_.max_rounds; ++round) {
    const int repetitions = options_.probe_repetitions << round;
    common::Rng round_rng = rng.Fork();
    BBV_RETURN_NOT_OK(ProbeActiveCandidates(base, probe, candidates, active,
                                            repetitions, round_rng, stats,
                                            total_probes));
    for (size_t candidate : active) ++stats[candidate].rounds_evaluated;
    std::sort(active.begin(), active.end(), [&](size_t a, size_t b) {
      if (stats[a].MeanAbsError() != stats[b].MeanAbsError()) {
        return stats[a].MeanAbsError() > stats[b].MeanAbsError();
      }
      return candidates[a].Key() < candidates[b].Key();
    });
    const size_t survivors = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(options_.survivor_fraction *
                                         static_cast<double>(active.size()))));
    if (survivors < active.size()) active.resize(survivors);
    // Breed: compose the top-ranked survivor with each of the next few —
    // atoms that individually confuse the predictor compound its blind
    // spot. Offspring join the next round with fresh statistics; ranking
    // order makes this deterministic.
    if (options_.max_depth > 1 && round + 1 < options_.max_rounds) {
      const size_t parents = std::min<size_t>(active.size(), 4);
      for (size_t i = 1; i < parents; ++i) {
        CorruptionSpec child;
        child.atoms = candidates[active[0]].atoms;
        for (const CorruptionAtomSpec& atom : candidates[active[i]].atoms) {
          if (child.atoms.size() >=
              static_cast<size_t>(options_.max_depth)) {
            break;
          }
          child.atoms.push_back(atom);
        }
        if (seen.insert(child.Key()).second) {
          candidates.push_back(std::move(child));
          stats.emplace_back();
          active.push_back(candidates.size() - 1);
        }
      }
    }
  }
  common::telemetry::IncrementCounter("corruption_search.probes",
                                      total_probes);
  return CollectFindings(candidates, stats, total_probes);
}

common::Result<CorruptionSearch::RunResult> CorruptionSearch::RandomSweep(
    const data::DataFrame& base, const ErrorProbe& probe,
    size_t num_probes) const {
  const common::telemetry::TraceSpan span("corruption_search.random_sweep");
  BBV_RETURN_NOT_OK(ValidateOptions(options_));
  if (probe == nullptr) {
    return common::Status::InvalidArgument("null error probe");
  }
  if (num_probes == 0) {
    return common::Status::InvalidArgument("num_probes must be >= 1");
  }
  const std::vector<CorruptionAtomSpec> pool = BuildAtomPool(base);
  if (pool.empty()) {
    return common::Status::InvalidArgument(
        "frame has no corruptible columns for any registered atom");
  }
  // Decorrelate the sweep stream from the search population stream drawn
  // from the same user seed.
  common::Rng rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<CorruptionSpec> candidates;
  candidates.reserve(num_probes);
  for (size_t i = 0; i < num_probes; ++i) {
    const size_t depth =
        1 + rng.UniformInt(static_cast<size_t>(options_.max_depth));
    CorruptionSpec spec;
    for (size_t d = 0; d < depth; ++d) {
      CorruptionAtomSpec atom = pool[rng.UniformInt(pool.size())];
      // The paper's regime: magnitude sampled at random, not optimized.
      atom.fraction = rng.Uniform();
      spec.atoms.push_back(std::move(atom));
    }
    candidates.push_back(std::move(spec));
  }
  std::vector<CandidateStats> stats(candidates.size());
  std::vector<size_t> active(candidates.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;
  size_t total_probes = 0;
  common::Rng sweep_rng = rng.Fork();
  BBV_RETURN_NOT_OK(ProbeActiveCandidates(base, probe, candidates, active,
                                          /*repetitions=*/1, sweep_rng, stats,
                                          total_probes));
  for (size_t candidate : active) ++stats[candidate].rounds_evaluated;
  return CollectFindings(candidates, stats, total_probes);
}

std::string CorruptionSearch::ReportString(const RunResult& result,
                                           size_t top_k) {
  std::string report = "corruption-search report: candidates=" +
                       std::to_string(result.findings.size()) +
                       " probes=" + std::to_string(result.total_probes) + "\n";
  const size_t count = std::min(top_k, result.findings.size());
  for (size_t i = 0; i < count; ++i) {
    const Finding& finding = result.findings[i];
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  %2zu. mean_abs_error=%.6f probes=%d rounds=%d ",
                  i + 1, finding.mean_abs_error, finding.probes,
                  finding.rounds_survived);
    report += line;
    report += finding.spec.Key();
    report += '\n';
  }
  return report;
}

}  // namespace bbv::errors
