#ifndef BBV_ERRORS_DISTRIBUTION_SHIFT_H_
#define BBV_ERRORS_DISTRIBUTION_SHIFT_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace bbv::errors {

/// Statistical dataset shifts, complementing the cell-level corruption
/// generators. These operate on labeled datasets (they re-sample rows), so
/// they are utilities rather than ErrorGen implementations: label shift by
/// definition needs the labels. They power the extension experiment that
/// evaluates the performance validator in the regimes the BBSE baselines
/// were designed for (Lipton et al.'s label shift, classic covariate shift).

/// Label shift: resamples `dataset` (with replacement) so that the fraction
/// of rows with label 1 equals `positive_fraction`, while p(x|y) is
/// untouched. Binary datasets only. `size` rows are drawn (0 = keep the
/// input size).
common::Result<data::Dataset> ResampleLabelShift(const data::Dataset& dataset,
                                                 double positive_fraction,
                                                 common::Rng& rng,
                                                 size_t size = 0);

/// Covariate shift via selection bias: resamples rows (with replacement)
/// with probability proportional to exp(strength * z) where z is the
/// standardized value of the named numeric column — p(x) changes while
/// p(y|x) is untouched. Positive strength over-represents large values.
common::Result<data::Dataset> ResampleCovariateShift(
    const data::Dataset& dataset, const std::string& numeric_column,
    double strength, common::Rng& rng, size_t size = 0);

}  // namespace bbv::errors

#endif  // BBV_ERRORS_DISTRIBUTION_SHIFT_H_
