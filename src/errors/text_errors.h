#ifndef BBV_ERRORS_TEXT_ERRORS_H_
#define BBV_ERRORS_TEXT_ERRORS_H_

#include <string>
#include <vector>

#include "errors/error_gen.h"

namespace bbv::errors {

/// Adversarial "leetspeak" attack on text columns (paper §6, tweets
/// dataset): rewrites a random proportion of texts with character
/// substitutions such as "hello world" -> "h3110 w041d", simulating trolls
/// who change spelling to evade the classifier.
class AdversarialLeetspeak : public ErrorGen {
 public:
  explicit AdversarialLeetspeak(std::vector<std::string> columns = {},
                                FractionRange fraction = {})
      : columns_(std::move(columns)), fraction_(fraction) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "adversarial_leetspeak"; }

  /// The substitution applied to corrupted texts (exposed for tests).
  static std::string ToLeetspeak(const std::string& text);

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
};

/// Typos in categorical values (paper §6.2.2, unknown at validator-training
/// time): perturbs a random proportion of a categorical attribute's values
/// by swapping adjacent characters / duplicating a character, producing
/// category levels the one-hot vocabulary has never seen.
class CategoricalTypos : public ErrorGen {
 public:
  /// `max_columns` caps how many random columns one call may hit (0 = all;
  /// the paper's §6.2.2 perturbs a single attribute -> pass 1).
  explicit CategoricalTypos(std::vector<std::string> columns = {},
                            FractionRange fraction = {},
                            size_t max_columns = 0)
      : columns_(std::move(columns)),
        fraction_(fraction),
        max_columns_(max_columns) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "categorical_typos"; }

  /// One random typo applied to `value` (exposed for tests).
  static std::string IntroduceTypo(const std::string& value,
                                   common::Rng& rng);

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
  size_t max_columns_ = 0;
};

/// Encoding errors (from the paper's implementation section): replaces
/// characters with look-alike characters from a wrong encoding, e.g.
/// 'E' -> 'É' and 'o' -> 'œ', in a random proportion of categorical values.
class EncodingErrors : public ErrorGen {
 public:
  explicit EncodingErrors(std::vector<std::string> columns = {},
                          FractionRange fraction = {})
      : columns_(std::move(columns)), fraction_(fraction) {}

  common::Result<data::DataFrame> Corrupt(const data::DataFrame& frame,
                                          common::Rng& rng) const override;
  std::string Name() const override { return "encoding_errors"; }

  static std::string Mangle(const std::string& value);

 private:
  std::vector<std::string> columns_;
  FractionRange fraction_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_TEXT_ERRORS_H_
