#ifndef BBV_ERRORS_CORRUPTION_SEARCH_H_
#define BBV_ERRORS_CORRUPTION_SEARCH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataframe.h"
#include "errors/error_gen.h"

namespace bbv::errors {

/// One atom of a corruption composition: a registered generator applied to
/// an explicit column subset at a fixed severity. Unlike the meta-training
/// regime (random columns, random magnitudes), an atom pins every degree of
/// freedom so a composition denotes one reproducible corruption.
struct CorruptionAtomSpec {
  /// Registry key, e.g. "outliers" (see CorruptionSearch::RegisteredAtomNames).
  std::string generator;
  /// Explicit columns the generator corrupts. For "swapped_columns" exactly
  /// two entries (the categorical and the numeric column of the pair).
  std::vector<std::string> columns;
  /// Fixed per-column corruption severity in [0, 1].
  double fraction = 1.0;
};

/// A compound corruption: atoms applied in order, each corrupting the
/// previous atom's output (2-3 deep in the adversarial search).
struct CorruptionSpec {
  std::vector<CorruptionAtomSpec> atoms;

  /// Canonical string form, e.g. "sign_flip[age]@1.000000>typos[job]@0.500000".
  /// Stable across runs and platforms; the fixture files under
  /// tests/fixtures/adversarial/ store exactly this.
  std::string Key() const;
};

/// Parses the Key() form back into a spec (fixture replay). Rejects
/// malformed text with InvalidArgument.
common::Result<CorruptionSpec> ParseCorruptionSpec(const std::string& text);

/// Adversarial corruption search (ROADMAP item; "Stress-Testing ML Pipelines
/// with Adversarial Data Corruption" in PAPERS.md): a deterministic black-box
/// optimizer over the composition space of the existing error generators
/// (type x explicit column subsets x fixed severities, including compound
/// corruptions via ComposedErrorGen) that *maximizes* a caller-supplied
/// estimation-error probe — in practice |estimated - true| score error of a
/// trained core::PerformancePredictor (see
/// PerformancePredictor::ProbeEstimationError; the probe indirection keeps
/// this module below core in the layering DAG).
///
/// Algorithm: successive halving with survivor breeding. An initial
/// population of compositions is sampled from the atom pool — half the
/// slots stride-sampled depth-1 atoms (every generator type represented),
/// half seeded random compounds up to Options::max_depth. Each round probes
/// every surviving candidate `probe_repetitions << round` times, ranks
/// candidates by their accumulated mean absolute estimation error, keeps
/// the top `survivor_fraction`, and breeds fresh candidates by composing
/// the top-ranked survivor with the runners-up (atoms that individually
/// confuse the predictor compound its blind spot). Budget concentrates on
/// the compositions the predictor handles worst — exactly the blind spots
/// the random-magnitude meta-training regime never visits.
///
/// Determinism contract (PR-2 gate): all randomness flows from
/// Options::seed through pre-forked Rng streams, one per (candidate, probe)
/// task, and per-candidate statistics are accumulated serially in task
/// order — results are byte-identical at any BBV_THREADS.
class CorruptionSearch {
 public:
  struct Options {
    /// Maximum atoms per composition (compound corruptions; 1 = single).
    int max_depth = 3;
    /// Population size sampled from the composition space: half depth-1
    /// atoms stride-sampled across the pool, half random compounds (all
    /// depth-1 when max_depth is 1). Survivor breeding may grow the
    /// evaluated candidate set slightly beyond this.
    size_t initial_candidates = 64;
    /// Probes per candidate in round 0; doubles every halving round.
    int probe_repetitions = 2;
    /// Fraction of candidates surviving each round (ceil, at least 1).
    double survivor_fraction = 0.5;
    /// Halving rounds. Total probe budget is roughly
    /// initial_candidates * probe_repetitions * max_rounds when halving
    /// balances doubling (survivor_fraction 0.5).
    int max_rounds = 3;
    /// Fixed severity grid the atom pool is built over.
    std::vector<double> fractions = {0.25, 0.5, 1.0};
    /// Seed for population sampling and probe corruption streams.
    uint64_t seed = 7;
  };

  /// One probe measurement on a corrupted serving frame.
  struct ProbeResult {
    double estimated_score = 0.0;
    double actual_score = 0.0;
  };

  /// The black-box objective. Must be safe to invoke concurrently (const
  /// calls only) — probes of one round fan out over ParallelFor.
  using ErrorProbe =
      std::function<common::Result<ProbeResult>(const data::DataFrame&)>;

  /// A candidate with its accumulated probe statistics. Candidates
  /// eliminated in early rounds carry fewer probes than the survivors.
  struct Finding {
    CorruptionSpec spec;
    double mean_abs_error = 0.0;
    double mean_actual_score = 0.0;
    double mean_estimated_score = 0.0;
    int probes = 0;
    /// Rounds this candidate survived (max_rounds for the final survivors).
    int rounds_survived = 0;
  };

  struct RunResult {
    /// All evaluated candidates, sorted by mean_abs_error descending with
    /// the canonical spec key as the deterministic tiebreak.
    std::vector<Finding> findings;
    /// Probe invocations consumed — the budget for equal-budget baselines.
    size_t total_probes = 0;
  };

  explicit CorruptionSearch(Options options) : options_(std::move(options)) {}
  CorruptionSearch() : CorruptionSearch(Options{}) {}

  /// Runs the successive-halving search against `base` (the serving frame
  /// the probe scores). Returns InvalidArgument for degenerate options or a
  /// frame with no corruptible columns.
  common::Result<RunResult> Run(const data::DataFrame& base,
                                const ErrorProbe& probe) const;

  /// Equal-budget baseline: `num_probes` compositions sampled from the same
  /// atom pool but with the paper's random-magnitude regime (fraction ~
  /// U(0,1)), each probed once. What a non-adversarial sweep would find.
  common::Result<RunResult> RandomSweep(const data::DataFrame& base,
                                        const ErrorProbe& probe,
                                        size_t num_probes) const;

  /// Instantiates the composed generator a spec denotes (fixture replay).
  /// Validates generator names, column subsets and fractions.
  static common::Result<std::shared_ptr<ErrorGen>> BuildGenerator(
      const CorruptionSpec& spec);

  /// The deterministic atom pool for a frame schema: every registered
  /// generator x applicable column subsets (each single column plus the
  /// full per-type set; all categorical-numeric pairs for
  /// "swapped_columns") x the Options::fractions grid, in registry order.
  std::vector<CorruptionAtomSpec> BuildAtomPool(
      const data::DataFrame& base) const;

  /// Registered atom generator names, sorted (the registry is an ordered
  /// map per the det-iter rule).
  static std::vector<std::string> RegisteredAtomNames();

  /// Canonical text report of the top `top_k` findings — no timing, no
  /// environment: byte-identical across runs of a deterministic search, so
  /// CI can diff back-to-back runs (the adversarial-smoke job).
  static std::string ReportString(const RunResult& result, size_t top_k);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace bbv::errors

#endif  // BBV_ERRORS_CORRUPTION_SEARCH_H_
