#include "featurize/pipeline.h"

#include <algorithm>

#include "common/telemetry.h"
#include "featurize/hashing_vectorizer.h"
#include "featurize/image_flattener.h"
#include "featurize/one_hot_encoder.h"
#include "featurize/standard_scaler.h"

namespace bbv::featurize {

common::Status FeaturePipeline::Fit(const data::DataFrame& frame) {
  const common::telemetry::TraceSpan span("featurize.fit");
  common::telemetry::IncrementCounter("featurize.fit.calls");
  if (frame.NumCols() == 0) {
    return common::Status::InvalidArgument("cannot fit on an empty frame");
  }
  column_names_.clear();
  column_types_.clear();
  transformers_.clear();
  for (size_t col = 0; col < frame.NumCols(); ++col) {
    const data::Column& column = frame.column(col);
    std::unique_ptr<Transformer> transformer;
    switch (column.type()) {
      case data::ColumnType::kNumeric:
        transformer = std::make_unique<StandardScaler>();
        break;
      case data::ColumnType::kCategorical:
        transformer = std::make_unique<OneHotEncoder>();
        break;
      case data::ColumnType::kText:
        transformer = std::make_unique<HashingVectorizer>(
            options_.text_hash_buckets, options_.text_max_ngram);
        break;
      case data::ColumnType::kImage:
        transformer = std::make_unique<ImageFlattener>();
        break;
    }
    BBV_RETURN_NOT_OK(transformer->Fit(column));
    column_names_.push_back(column.name());
    column_types_.push_back(column.type());
    transformers_.push_back(std::move(transformer));
  }
  fitted_ = true;
  return common::Status::OK();
}

common::Result<linalg::Matrix> FeaturePipeline::Transform(
    const data::DataFrame& frame) const {
  const common::telemetry::TraceSpan span("featurize.transform");
  if (!fitted_) {
    return common::Status::FailedPrecondition("Transform before Fit");
  }
  common::telemetry::IncrementCounter("featurize.transform.rows",
                                      frame.NumRows());
  if (frame.NumCols() != transformers_.size()) {
    return common::Status::InvalidArgument(
        "frame schema does not match the fitted schema");
  }
  linalg::Matrix result(frame.NumRows(), TotalDim());
  size_t offset = 0;
  for (size_t col = 0; col < transformers_.size(); ++col) {
    const data::Column& column = frame.column(col);
    if (column.name() != column_names_[col] ||
        column.type() != column_types_[col]) {
      return common::Status::InvalidArgument(
          "column '" + column.name() + "' does not match fitted column '" +
          column_names_[col] + "'");
    }
    const linalg::Matrix block = transformers_[col]->Transform(column);
    for (size_t row = 0; row < frame.NumRows(); ++row) {
      std::copy(block.RowData(row), block.RowData(row) + block.cols(),
                result.RowData(row) + offset);
    }
    offset += transformers_[col]->OutputDim();
  }
  return result;
}

size_t FeaturePipeline::TotalDim() const {
  size_t total = 0;
  for (const auto& transformer : transformers_) {
    total += transformer->OutputDim();
  }
  return total;
}

}  // namespace bbv::featurize

namespace bbv::featurize {

namespace {
constexpr char kPipelineMagic[] = "BBVFP";
constexpr uint32_t kPipelineVersion = 1;
}  // namespace

common::Status FeaturePipeline::Save(std::ostream& out) const {
  if (!fitted_) {
    return common::Status::FailedPrecondition("Save before Fit");
  }
  common::BinaryWriter writer(out);
  writer.WriteMagic(kPipelineMagic, kPipelineVersion);
  writer.WriteUint64(transformers_.size());
  for (size_t col = 0; col < transformers_.size(); ++col) {
    writer.WriteString(column_names_[col]);
    writer.WriteInt32(static_cast<int32_t>(column_types_[col]));
    switch (column_types_[col]) {
      case data::ColumnType::kNumeric:
        static_cast<const StandardScaler&>(*transformers_[col])
            .SaveTo(writer);
        break;
      case data::ColumnType::kCategorical:
        static_cast<const OneHotEncoder&>(*transformers_[col]).SaveTo(writer);
        break;
      case data::ColumnType::kText:
        static_cast<const HashingVectorizer&>(*transformers_[col])
            .SaveTo(writer);
        break;
      case data::ColumnType::kImage:
        static_cast<const ImageFlattener&>(*transformers_[col])
            .SaveTo(writer);
        break;
    }
  }
  return writer.status();
}

common::Result<FeaturePipeline> FeaturePipeline::Load(std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kPipelineMagic, kPipelineVersion));
  BBV_ASSIGN_OR_RETURN(uint64_t count, reader.ReadUint64());
  if (count == 0 || count > 100'000) {
    return common::Status::InvalidArgument("corrupt pipeline width");
  }
  FeaturePipeline pipeline;
  for (uint64_t col = 0; col < count; ++col) {
    BBV_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    BBV_ASSIGN_OR_RETURN(int32_t raw_type, reader.ReadInt32());
    if (raw_type < 0 ||
        raw_type > static_cast<int32_t>(data::ColumnType::kImage)) {
      return common::Status::InvalidArgument("corrupt column type");
    }
    const auto type = static_cast<data::ColumnType>(raw_type);
    std::unique_ptr<Transformer> transformer;
    switch (type) {
      case data::ColumnType::kNumeric: {
        BBV_ASSIGN_OR_RETURN(StandardScaler scaler,
                             StandardScaler::LoadFrom(reader));
        transformer = std::make_unique<StandardScaler>(std::move(scaler));
        break;
      }
      case data::ColumnType::kCategorical: {
        BBV_ASSIGN_OR_RETURN(OneHotEncoder encoder,
                             OneHotEncoder::LoadFrom(reader));
        transformer = std::make_unique<OneHotEncoder>(std::move(encoder));
        break;
      }
      case data::ColumnType::kText: {
        BBV_ASSIGN_OR_RETURN(HashingVectorizer vectorizer,
                             HashingVectorizer::LoadFrom(reader));
        transformer =
            std::make_unique<HashingVectorizer>(std::move(vectorizer));
        break;
      }
      case data::ColumnType::kImage: {
        BBV_ASSIGN_OR_RETURN(ImageFlattener flattener,
                             ImageFlattener::LoadFrom(reader));
        transformer = std::make_unique<ImageFlattener>(std::move(flattener));
        break;
      }
    }
    pipeline.column_names_.push_back(std::move(name));
    pipeline.column_types_.push_back(type);
    pipeline.transformers_.push_back(std::move(transformer));
  }
  pipeline.fitted_ = true;
  return pipeline;
}

}  // namespace bbv::featurize
