#include "featurize/image_flattener.h"

#include <algorithm>

namespace bbv::featurize {

common::Status ImageFlattener::Fit(const data::Column& column) {
  if (column.type() != data::ColumnType::kImage) {
    return common::Status::InvalidArgument(
        "ImageFlattener requires an image column, got '" + column.name() +
        "'");
  }
  num_pixels_ = 0;
  for (size_t row = 0; row < column.size(); ++row) {
    if (column.cell(row).is_image()) {
      num_pixels_ = column.cell(row).AsImage().size();
      break;
    }
  }
  if (num_pixels_ == 0) {
    return common::Status::InvalidArgument(
        "ImageFlattener: column '" + column.name() + "' has no images");
  }
  fitted_ = true;
  return common::Status::OK();
}

linalg::Matrix ImageFlattener::Transform(const data::Column& column) const {
  BBV_CHECK(fitted_) << "ImageFlattener::Transform before Fit";
  linalg::Matrix result(column.size(), num_pixels_);
  for (size_t row = 0; row < column.size(); ++row) {
    const data::CellValue& cell = column.cell(row);
    if (!cell.is_image()) continue;  // NA -> zero row
    const std::vector<double>& pixels = cell.AsImage();
    const size_t n = std::min(pixels.size(), num_pixels_);
    std::copy(pixels.begin(), pixels.begin() + n, result.RowData(row));
  }
  return result;
}

}  // namespace bbv::featurize

namespace bbv::featurize {

void ImageFlattener::SaveTo(common::BinaryWriter& writer) const {
  writer.WriteUint64(num_pixels_);
}

common::Result<ImageFlattener> ImageFlattener::LoadFrom(
    common::BinaryReader& reader) {
  BBV_ASSIGN_OR_RETURN(uint64_t pixels, reader.ReadUint64());
  if (pixels == 0 || pixels > (1u << 30)) {
    return common::Status::InvalidArgument("corrupt flattener config");
  }
  ImageFlattener flattener;
  flattener.num_pixels_ = pixels;
  flattener.fitted_ = true;
  return flattener;
}

}  // namespace bbv::featurize
