#ifndef BBV_FEATURIZE_ONE_HOT_ENCODER_H_
#define BBV_FEATURIZE_ONE_HOT_ENCODER_H_

#include <map>
#include <string>

#include "common/serialize.h"
#include "featurize/transformer.h"

namespace bbv::featurize {

/// One-hot encodes a categorical column over the vocabulary observed at fit
/// time. Unseen categories and NA cells map to the all-zero vector — the
/// property the paper leans on when it argues that typos and missing values
/// have identical effects through the feature map.
class OneHotEncoder : public Transformer {
 public:
  common::Status Fit(const data::Column& column) override;
  linalg::Matrix Transform(const data::Column& column) const override;
  size_t OutputDim() const override { return vocabulary_.size(); }

  /// Index of a category in the encoding, or -1 if unseen.
  int CategoryIndex(const std::string& value) const;

  void SaveTo(common::BinaryWriter& writer) const;
  static common::Result<OneHotEncoder> LoadFrom(common::BinaryReader& reader);

 private:
  bool fitted_ = false;
  /// Category -> column index (index order is first appearance at fit time;
  /// the ordered map keeps every traversal of the vocabulary deterministic).
  std::map<std::string, size_t> vocabulary_;
};

}  // namespace bbv::featurize

#endif  // BBV_FEATURIZE_ONE_HOT_ENCODER_H_
