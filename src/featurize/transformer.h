#ifndef BBV_FEATURIZE_TRANSFORMER_H_
#define BBV_FEATURIZE_TRANSFORMER_H_

#include <memory>

#include "common/status.h"
#include "data/column.h"
#include "linalg/matrix.h"

namespace bbv::featurize {

/// Fits on a training column and maps a column to a dense numeric block.
/// Mirrors scikit-learn's fit/transform contract: statistics are estimated
/// from training data only and reused verbatim on serving data, which is
/// exactly the mechanism through which serving-time corruption shows up in
/// model inputs (e.g. unseen categories one-hot encode to a zero vector).
class Transformer {
 public:
  virtual ~Transformer() = default;

  /// Estimates the transformer's statistics from a training column.
  virtual common::Status Fit(const data::Column& column) = 0;

  /// Maps a column of length n to an n x OutputDim() block. Must be called
  /// after Fit. NA cells map to all-zero rows.
  virtual linalg::Matrix Transform(const data::Column& column) const = 0;

  /// Width of the emitted block (valid after Fit).
  virtual size_t OutputDim() const = 0;
};

}  // namespace bbv::featurize

#endif  // BBV_FEATURIZE_TRANSFORMER_H_
