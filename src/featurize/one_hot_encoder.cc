#include "featurize/one_hot_encoder.h"

namespace bbv::featurize {

common::Status OneHotEncoder::Fit(const data::Column& column) {
  if (column.type() != data::ColumnType::kCategorical) {
    return common::Status::InvalidArgument(
        "OneHotEncoder requires a categorical column, got '" + column.name() +
        "'");
  }
  vocabulary_.clear();
  for (const std::string& value : column.DistinctStrings()) {
    vocabulary_.emplace(value, vocabulary_.size());
  }
  if (vocabulary_.empty()) {
    return common::Status::InvalidArgument(
        "OneHotEncoder: column '" + column.name() + "' has no categories");
  }
  fitted_ = true;
  return common::Status::OK();
}

linalg::Matrix OneHotEncoder::Transform(const data::Column& column) const {
  BBV_CHECK(fitted_) << "OneHotEncoder::Transform before Fit";
  linalg::Matrix result(column.size(), vocabulary_.size());
  for (size_t row = 0; row < column.size(); ++row) {
    const data::CellValue& cell = column.cell(row);
    if (!cell.is_string()) continue;  // NA -> zero vector
    const auto it = vocabulary_.find(cell.AsString());
    if (it == vocabulary_.end()) continue;  // unseen category -> zero vector
    result.At(row, it->second) = 1.0;
  }
  return result;
}

int OneHotEncoder::CategoryIndex(const std::string& value) const {
  const auto it = vocabulary_.find(value);
  return it == vocabulary_.end() ? -1 : static_cast<int>(it->second);
}

}  // namespace bbv::featurize

namespace bbv::featurize {

void OneHotEncoder::SaveTo(common::BinaryWriter& writer) const {
  // Persist categories in index order so the encoding is reproduced.
  std::vector<std::string> categories(vocabulary_.size());
  for (const auto& [value, index] : vocabulary_) {
    categories[index] = value;
  }
  writer.WriteUint64(categories.size());
  for (const std::string& value : categories) {
    writer.WriteString(value);
  }
}

common::Result<OneHotEncoder> OneHotEncoder::LoadFrom(
    common::BinaryReader& reader) {
  BBV_ASSIGN_OR_RETURN(uint64_t count, reader.ReadUint64());
  if (count == 0 || count > 10'000'000) {
    return common::Status::InvalidArgument("corrupt vocabulary size");
  }
  OneHotEncoder encoder;
  for (uint64_t index = 0; index < count; ++index) {
    BBV_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
    encoder.vocabulary_.emplace(std::move(value), index);
  }
  if (encoder.vocabulary_.size() != count) {
    return common::Status::InvalidArgument("duplicate vocabulary entries");
  }
  encoder.fitted_ = true;
  return encoder;
}

}  // namespace bbv::featurize
