#include "featurize/hashing_vectorizer.h"

#include <cmath>
#include <string>

#include "common/string_util.h"

namespace bbv::featurize {

HashingVectorizer::HashingVectorizer(size_t num_buckets, int max_ngram)
    : num_buckets_(num_buckets), max_ngram_(max_ngram) {
  BBV_CHECK_GT(num_buckets_, 0u);
  BBV_CHECK_GE(max_ngram_, 1);
}

common::Status HashingVectorizer::Fit(const data::Column& column) {
  if (column.type() != data::ColumnType::kText) {
    return common::Status::InvalidArgument(
        "HashingVectorizer requires a text column, got '" + column.name() +
        "'");
  }
  fitted_ = true;
  return common::Status::OK();
}

linalg::Matrix HashingVectorizer::Transform(const data::Column& column) const {
  BBV_CHECK(fitted_) << "HashingVectorizer::Transform before Fit";
  linalg::Matrix result(column.size(), num_buckets_);
  for (size_t row = 0; row < column.size(); ++row) {
    const data::CellValue& cell = column.cell(row);
    if (!cell.is_string()) continue;  // NA -> zero vector
    const std::vector<std::string> tokens =
        common::SplitWhitespace(common::ToLower(cell.AsString()));
    double* out = result.RowData(row);
    for (size_t start = 0; start < tokens.size(); ++start) {
      std::string ngram;
      for (int length = 1; length <= max_ngram_; ++length) {
        const size_t end = start + static_cast<size_t>(length);
        if (end > tokens.size()) break;
        if (length > 1) ngram += ' ';
        ngram += tokens[end - 1];
        const uint64_t hash = common::Fnv1aHash(ngram);
        // Signed hashing trick reduces collision bias.
        const double sign = (hash & 1) != 0 ? 1.0 : -1.0;
        out[(hash >> 1) % num_buckets_] += sign;
      }
    }
    double norm = 0.0;
    for (size_t j = 0; j < num_buckets_; ++j) norm += out[j] * out[j];
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (size_t j = 0; j < num_buckets_; ++j) out[j] /= norm;
    }
  }
  return result;
}

}  // namespace bbv::featurize

namespace bbv::featurize {

void HashingVectorizer::SaveTo(common::BinaryWriter& writer) const {
  writer.WriteUint64(num_buckets_);
  writer.WriteInt32(max_ngram_);
}

common::Result<HashingVectorizer> HashingVectorizer::LoadFrom(
    common::BinaryReader& reader) {
  BBV_ASSIGN_OR_RETURN(uint64_t buckets, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(int32_t max_ngram, reader.ReadInt32());
  if (buckets == 0 || buckets > (1u << 30) || max_ngram < 1 ||
      max_ngram > 16) {
    return common::Status::InvalidArgument("corrupt vectorizer config");
  }
  HashingVectorizer vectorizer(buckets, max_ngram);
  vectorizer.fitted_ = true;
  return vectorizer;
}

}  // namespace bbv::featurize
