#ifndef BBV_FEATURIZE_IMAGE_FLATTENER_H_
#define BBV_FEATURIZE_IMAGE_FLATTENER_H_

#include "common/serialize.h"
#include "featurize/transformer.h"

namespace bbv::featurize {

/// Emits an image column's pixels as one row per image. All images in the
/// column must share the size observed at fit time; NA -> zero row.
class ImageFlattener : public Transformer {
 public:
  common::Status Fit(const data::Column& column) override;
  linalg::Matrix Transform(const data::Column& column) const override;
  size_t OutputDim() const override { return num_pixels_; }

  void SaveTo(common::BinaryWriter& writer) const;
  static common::Result<ImageFlattener> LoadFrom(common::BinaryReader& reader);

 private:
  bool fitted_ = false;
  size_t num_pixels_ = 0;
};

}  // namespace bbv::featurize

#endif  // BBV_FEATURIZE_IMAGE_FLATTENER_H_
