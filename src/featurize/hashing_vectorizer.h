#ifndef BBV_FEATURIZE_HASHING_VECTORIZER_H_
#define BBV_FEATURIZE_HASHING_VECTORIZER_H_

#include "common/serialize.h"
#include "featurize/transformer.h"

namespace bbv::featurize {

/// Hashes word-level n-grams of a text column into a fixed number of
/// buckets (the paper: "hash word-level n-grams of textual attributes to a
/// large sparse vector"). Stateless apart from configuration, so Fit only
/// validates the column type. Rows are L2-normalized; NA -> zero vector.
class HashingVectorizer : public Transformer {
 public:
  /// `num_buckets` output dimensions; n-grams of length 1..max_ngram words.
  explicit HashingVectorizer(size_t num_buckets = 512, int max_ngram = 2);

  common::Status Fit(const data::Column& column) override;
  linalg::Matrix Transform(const data::Column& column) const override;
  size_t OutputDim() const override { return num_buckets_; }

  void SaveTo(common::BinaryWriter& writer) const;
  static common::Result<HashingVectorizer> LoadFrom(
      common::BinaryReader& reader);

 private:
  size_t num_buckets_;
  int max_ngram_;
  bool fitted_ = false;
};

}  // namespace bbv::featurize

#endif  // BBV_FEATURIZE_HASHING_VECTORIZER_H_
