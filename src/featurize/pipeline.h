#ifndef BBV_FEATURIZE_PIPELINE_H_
#define BBV_FEATURIZE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "data/dataframe.h"
#include "featurize/transformer.h"

namespace bbv::featurize {

/// Configuration for the default column-type -> transformer mapping.
struct PipelineOptions {
  /// Buckets for word n-gram hashing of text columns.
  size_t text_hash_buckets = 512;
  /// Maximum word n-gram length for text columns.
  int text_max_ngram = 2;
};

/// Column-wise feature pipeline mirroring the paper's featurization:
/// standardize numeric attributes, one-hot encode categorical attributes,
/// hash word n-grams of text attributes, flatten images, and concatenate the
/// blocks. Fitted on training data only (scikit-learn Pipeline semantics).
class FeaturePipeline {
 public:
  explicit FeaturePipeline(PipelineOptions options = {})
      : options_(options) {}

  FeaturePipeline(FeaturePipeline&&) = default;
  FeaturePipeline& operator=(FeaturePipeline&&) = default;

  /// Fits one transformer per column of `frame`.
  common::Status Fit(const data::DataFrame& frame);

  /// Maps a frame with the training schema to an n x TotalDim() matrix.
  /// Must be called after Fit; column names/types/order must match.
  common::Result<linalg::Matrix> Transform(const data::DataFrame& frame) const;

  /// Total output width (valid after Fit).
  size_t TotalDim() const;

  bool fitted() const { return fitted_; }

  /// Persists the fitted pipeline (per-column transformer state).
  common::Status Save(std::ostream& out) const;
  static common::Result<FeaturePipeline> Load(std::istream& in);

 private:
  PipelineOptions options_;
  bool fitted_ = false;
  std::vector<std::string> column_names_;
  std::vector<data::ColumnType> column_types_;
  std::vector<std::unique_ptr<Transformer>> transformers_;
};

}  // namespace bbv::featurize

#endif  // BBV_FEATURIZE_PIPELINE_H_
