#include "featurize/standard_scaler.h"

#include "stats/descriptive.h"

namespace bbv::featurize {

common::Status StandardScaler::Fit(const data::Column& column) {
  if (column.type() != data::ColumnType::kNumeric) {
    return common::Status::InvalidArgument(
        "StandardScaler requires a numeric column, got '" + column.name() +
        "'");
  }
  const std::vector<double> values = column.NumericValues();
  if (values.empty()) {
    return common::Status::InvalidArgument(
        "StandardScaler: column '" + column.name() + "' has no numeric cells");
  }
  mean_ = stats::Mean(values);
  stddev_ = stats::StdDev(values);
  if (stddev_ <= 0.0) stddev_ = 1.0;  // constant column: center only
  fitted_ = true;
  return common::Status::OK();
}

linalg::Matrix StandardScaler::Transform(const data::Column& column) const {
  BBV_CHECK(fitted_) << "StandardScaler::Transform before Fit";
  linalg::Matrix result(column.size(), 1);
  for (size_t row = 0; row < column.size(); ++row) {
    const data::CellValue& cell = column.cell(row);
    if (cell.is_numeric()) {
      result.At(row, 0) = (cell.AsDouble() - mean_) / stddev_;
    }
    // NA stays 0 == mean imputation after centering.
  }
  return result;
}

}  // namespace bbv::featurize

namespace bbv::featurize {

void StandardScaler::SaveTo(common::BinaryWriter& writer) const {
  writer.WriteDouble(mean_);
  writer.WriteDouble(stddev_);
}

common::Result<StandardScaler> StandardScaler::LoadFrom(
    common::BinaryReader& reader) {
  StandardScaler scaler;
  BBV_ASSIGN_OR_RETURN(scaler.mean_, reader.ReadDouble());
  BBV_ASSIGN_OR_RETURN(scaler.stddev_, reader.ReadDouble());
  if (scaler.stddev_ <= 0.0) {
    return common::Status::InvalidArgument("corrupt scaler stddev");
  }
  scaler.fitted_ = true;
  return scaler;
}

}  // namespace bbv::featurize
