#ifndef BBV_FEATURIZE_STANDARD_SCALER_H_
#define BBV_FEATURIZE_STANDARD_SCALER_H_

#include "common/serialize.h"
#include "featurize/transformer.h"

namespace bbv::featurize {

/// Standardizes a numeric column to zero mean / unit variance using training
/// statistics. NA cells become 0 (the training mean after centering), which
/// matches mean imputation.
class StandardScaler : public Transformer {
 public:
  common::Status Fit(const data::Column& column) override;
  linalg::Matrix Transform(const data::Column& column) const override;
  size_t OutputDim() const override { return 1; }

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  void SaveTo(common::BinaryWriter& writer) const;
  static common::Result<StandardScaler> LoadFrom(common::BinaryReader& reader);

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace bbv::featurize

#endif  // BBV_FEATURIZE_STANDARD_SCALER_H_
