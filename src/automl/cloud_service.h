#ifndef BBV_AUTOML_CLOUD_SERVICE_H_
#define BBV_AUTOML_CLOUD_SERVICE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "automl/automl_search.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "ml/black_box.h"

namespace bbv::automl {

/// A model "hosted in the cloud": the Google-AutoML-Tables stand-in from the
/// paper's §6.3.2. The learning algorithm and feature map are chosen by an
/// AutoML search inside the service and are invisible to the caller, who
/// only gets a batch prediction endpoint. Requests are split into
/// API-style batches and metered, mimicking the operational surface of a
/// real prediction service.
class CloudHostedModel : public ml::BlackBox {
 public:
  CloudHostedModel(std::unique_ptr<ml::BlackBoxModel> model,
                   size_t max_batch_size)
      : model_(std::move(model)), max_batch_size_(max_batch_size) {
    BBV_CHECK(model_ != nullptr);
    BBV_CHECK_GT(max_batch_size_, 0u);
  }

  common::Result<linalg::Matrix> PredictProba(
      const data::DataFrame& frame) const override;
  int num_classes() const override { return model_->num_classes(); }
  std::string Name() const override { return "cloud-automl"; }

  /// Number of prediction API calls made so far (each covers at most
  /// max_batch_size rows).
  size_t api_calls() const { return api_calls_; }
  size_t rows_served() const { return rows_served_; }

 private:
  std::unique_ptr<ml::BlackBoxModel> model_;
  size_t max_batch_size_;
  mutable size_t api_calls_ = 0;
  mutable size_t rows_served_ = 0;
};

/// The training side of the cloud service: submit a dataset, receive an
/// opaque hosted model.
class CloudModelService {
 public:
  struct Options {
    /// Rows per prediction API request.
    size_t max_batch_size = 1000;
    AutoMlOptions automl;
  };

  CloudModelService() : CloudModelService(Options{}) {}
  explicit CloudModelService(Options options) : options_(std::move(options)) {}

  /// "Uploads" the dataset and trains a model in the cloud. Returns the
  /// hosted model handle.
  common::Result<std::unique_ptr<CloudHostedModel>> TrainModel(
      const data::Dataset& train, common::Rng& rng) const;

 private:
  Options options_;
};

}  // namespace bbv::automl

#endif  // BBV_AUTOML_CLOUD_SERVICE_H_
