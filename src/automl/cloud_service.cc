#include "automl/cloud_service.h"

#include <algorithm>
#include <numeric>

namespace bbv::automl {

common::Result<linalg::Matrix> CloudHostedModel::PredictProba(
    const data::DataFrame& frame) const {
  linalg::Matrix all_probabilities;
  const size_t num_rows = frame.NumRows();
  size_t start = 0;
  // Split into API-sized batches like a real prediction endpoint would.
  do {
    const size_t end = std::min(start + max_batch_size_, num_rows);
    std::vector<size_t> rows(end - start);
    std::iota(rows.begin(), rows.end(), start);
    BBV_ASSIGN_OR_RETURN(linalg::Matrix batch_probabilities,
                         model_->PredictProba(frame.SelectRows(rows)));
    all_probabilities.AppendRows(batch_probabilities);
    ++api_calls_;
    rows_served_ += rows.size();
    start = end;
  } while (start < num_rows);
  return all_probabilities;
}

common::Result<std::unique_ptr<CloudHostedModel>>
CloudModelService::TrainModel(const data::Dataset& train,
                              common::Rng& rng) const {
  BBV_ASSIGN_OR_RETURN(std::unique_ptr<ml::BlackBoxModel> model,
                       AutoMlTabularSearch(train, options_.automl, rng));
  return std::make_unique<CloudHostedModel>(std::move(model),
                                            options_.max_batch_size);
}

}  // namespace bbv::automl
