#ifndef BBV_AUTOML_AUTOML_SEARCH_H_
#define BBV_AUTOML_AUTOML_SEARCH_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "ml/black_box.h"

namespace bbv::automl {

/// Automatic machine learning for tabular/text data — the stand-in for
/// auto-sklearn and TPOT in the paper's §6.3. Runs a cross-validated search
/// over a zoo of model families and hyperparameters (linear models, CARTs,
/// gradient-boosted ensembles, feed-forward networks) and returns the
/// winner as an opaque black box: callers never learn which family won,
/// matching the paper's "model internals such as feature maps or ensembling
/// techniques are decided automatically".
struct AutoMlOptions {
  /// Cross-validation folds for candidate scoring.
  int cv_folds = 3;
  /// Search breadth knob; "tpot" restricts the zoo to tree pipelines the
  /// way TPOT does, "sklearn" searches every family.
  std::string flavor = "sklearn";
};

common::Result<std::unique_ptr<ml::BlackBoxModel>> AutoMlTabularSearch(
    const data::Dataset& train, const AutoMlOptions& options,
    common::Rng& rng);

/// Neural architecture search for image data — the auto-keras stand-in.
/// Searches over convolutional architectures (channel counts, dense width)
/// by validation accuracy and returns the winner as a black box.
common::Result<std::unique_ptr<ml::BlackBoxModel>> AutoKerasImageSearch(
    const data::Dataset& train, common::Rng& rng);

/// The "large-convnet" from Figure 6: a convolutional architecture larger
/// than anything in the auto-keras search space, without any search.
/// `paper_scale` selects the paper's exact 32/64/128 architecture; the
/// default is a scaled-down variant for single-core experiment runs.
common::Result<std::unique_ptr<ml::BlackBoxModel>> MakeLargeConvNet(
    const data::Dataset& train, common::Rng& rng, bool paper_scale = false);

}  // namespace bbv::automl

#endif  // BBV_AUTOML_AUTOML_SEARCH_H_
