#include "automl/automl_search.h"

#include <functional>
#include <utility>
#include <vector>

#include "featurize/pipeline.h"
#include "ml/conv_net.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/feed_forward_network.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/sgd_logistic_regression.h"

namespace bbv::automl {

namespace {

using ClassifierFactory = std::function<std::unique_ptr<ml::Classifier>()>;

std::vector<ClassifierFactory> TabularZoo(const std::string& flavor) {
  std::vector<ClassifierFactory> zoo;
  const bool trees_only = flavor == "tpot";
  if (!trees_only) {
    for (ml::Penalty penalty : {ml::Penalty::kL2, ml::Penalty::kL1}) {
      for (double learning_rate : {0.05, 0.2}) {
        zoo.push_back([penalty, learning_rate]() {
          ml::SgdLogisticRegression::Options options;
          options.penalty = penalty;
          options.learning_rate = learning_rate;
          return std::make_unique<ml::SgdLogisticRegression>(options);
        });
      }
    }
    for (size_t width : {16UL, 48UL}) {
      zoo.push_back([width]() {
        ml::FeedForwardNetwork::Options options;
        options.hidden_sizes = {width, width};
        options.epochs = 25;
        return std::make_unique<ml::FeedForwardNetwork>(options);
      });
    }
  }
  for (int depth : {4, 8}) {
    zoo.push_back([depth]() {
      ml::TreeOptions options;
      options.max_depth = depth;
      options.min_samples_leaf = 5;
      return std::make_unique<ml::DecisionTreeClassifier>(options);
    });
  }
  for (int rounds : {30, 60}) {
    for (int depth : {2, 4}) {
      zoo.push_back([rounds, depth]() {
        ml::GradientBoostedTrees::Options options;
        options.num_rounds = rounds;
        options.tree.max_depth = depth;
        return std::make_unique<ml::GradientBoostedTrees>(options);
      });
    }
  }
  return zoo;
}

/// Fits the shared feature pipeline, grid-searches the zoo by CV accuracy,
/// and retrains the winning candidate as a BlackBoxModel.
common::Result<std::unique_ptr<ml::BlackBoxModel>> SearchAndTrain(
    const data::Dataset& train,
    const std::vector<ClassifierFactory>& candidates, int cv_folds,
    common::Rng& rng) {
  if (train.NumRows() == 0) {
    return common::Status::InvalidArgument("empty training dataset");
  }
  featurize::FeaturePipeline pipeline;
  BBV_RETURN_NOT_OK(pipeline.Fit(train.features));
  BBV_ASSIGN_OR_RETURN(linalg::Matrix features,
                       pipeline.Transform(train.features));
  BBV_ASSIGN_OR_RETURN(
      size_t winner,
      ml::GridSearchClassifier(candidates, features, train.labels,
                               train.num_classes, cv_folds, rng));
  auto model = std::make_unique<ml::BlackBoxModel>(candidates[winner]());
  BBV_RETURN_NOT_OK(model->Train(train, rng));
  return model;
}

}  // namespace

common::Result<std::unique_ptr<ml::BlackBoxModel>> AutoMlTabularSearch(
    const data::Dataset& train, const AutoMlOptions& options,
    common::Rng& rng) {
  return SearchAndTrain(train, TabularZoo(options.flavor), options.cv_folds,
                        rng);
}

common::Result<std::unique_ptr<ml::BlackBoxModel>> AutoKerasImageSearch(
    const data::Dataset& train, common::Rng& rng) {
  std::vector<ClassifierFactory> zoo;
  struct Architecture {
    size_t conv1;
    size_t conv2;
    size_t dense;
  };
  for (const Architecture& arch : {Architecture{4, 8, 32},
                                   Architecture{8, 16, 64},
                                   Architecture{8, 24, 96}}) {
    zoo.push_back([arch]() {
      ml::ConvNet::Options options;
      options.conv1_channels = arch.conv1;
      options.conv2_channels = arch.conv2;
      options.dense_units = arch.dense;
      options.epochs = 5;
      return std::make_unique<ml::ConvNet>(options);
    });
  }
  // 2-fold CV keeps the architecture search affordable; auto-keras likewise
  // scores candidates on a single validation split.
  return SearchAndTrain(train, zoo, /*cv_folds=*/2, rng);
}

common::Result<std::unique_ptr<ml::BlackBoxModel>> MakeLargeConvNet(
    const data::Dataset& train, common::Rng& rng, bool paper_scale) {
  ml::ConvNet::Options options;
  if (paper_scale) {
    options = ml::ConvNet::Options::PaperScale();
  } else {
    // "Large" relative to the auto-keras search space, but affordable on a
    // single core for the fast experiment mode.
    options.conv1_channels = 16;
    options.conv2_channels = 32;
    options.dense_units = 96;
  }
  auto model = std::make_unique<ml::BlackBoxModel>(
      std::make_unique<ml::ConvNet>(options));
  BBV_RETURN_NOT_OK(model->Train(train, rng));
  return model;
}

}  // namespace bbv::automl
