#include "stats/special_functions.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.h"

namespace bbv::stats {

namespace {

// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
constexpr double kLanczos[] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

/// Lower incomplete gamma by series expansion; converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LnGamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction; for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - LnGamma(a));
}

}  // namespace

double LnGamma(double x) {
  BBV_CHECK(std::isfinite(x)) << "LnGamma(" << x << ")";
  BBV_CHECK_GT(x, 0.0);
  if (x < 0.5) {
    // Reflection formula keeps precision near 0.
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           LnGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    sum += kLanczos[i] / (z + static_cast<double>(i));
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * std::numbers::pi) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  BBV_CHECK(std::isfinite(a) && std::isfinite(x))
      << "RegularizedGammaP(" << a << ", " << x << ")";
  BBV_CHECK_GT(a, 0.0);
  BBV_CHECK_GE(x, 0.0);
  // x is checked non-negative, so non-positive means exactly zero.
  if (x <= 0.0) return 0.0;
  const double p = x < a + 1.0 ? GammaPSeries(a, x)
                               : 1.0 - GammaQContinuedFraction(a, x);
  BBV_DCHECK(p > -1e-12 && p < 1.0 + 1e-12)
      << "regularized gamma P(" << a << ", " << x << ") = " << p
      << " outside [0, 1]";
  return std::clamp(p, 0.0, 1.0);
}

double RegularizedGammaQ(double a, double x) {
  BBV_CHECK(std::isfinite(a) && std::isfinite(x))
      << "RegularizedGammaQ(" << a << ", " << x << ")";
  BBV_CHECK_GT(a, 0.0);
  BBV_CHECK_GE(x, 0.0);
  if (x <= 0.0) return 1.0;
  const double q = x < a + 1.0 ? 1.0 - GammaPSeries(a, x)
                               : GammaQContinuedFraction(a, x);
  BBV_DCHECK(q > -1e-12 && q < 1.0 + 1e-12)
      << "regularized gamma Q(" << a << ", " << x << ") = " << q
      << " outside [0, 1]";
  return std::clamp(q, 0.0, 1.0);
}

double ChiSquaredSurvival(double x, double dof) {
  BBV_CHECK(std::isfinite(x)) << "ChiSquaredSurvival statistic " << x;
  BBV_CHECK_GT(dof, 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

double KolmogorovSurvival(double lambda) {
  BBV_CHECK(!std::isnan(lambda)) << "KolmogorovSurvival(NaN)";
  if (lambda <= 0.0) return 1.0;
  if (lambda > 10.0) return 0.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 200; ++j) {
    const double jd = static_cast<double>(j);
    const double term = sign * std::exp(-2.0 * jd * jd * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-12) break;
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace bbv::stats
