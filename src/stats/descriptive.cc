#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace bbv::stats {

double Mean(const std::vector<double>& values) {
  BBV_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  // Empty input is a contract violation like Mean/Min/Max — returning a
  // silent 0.0 here used to mask degenerate callers.
  BBV_CHECK(!values.empty());
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_squares = 0.0;
  for (double v : values) {
    const double centered = v - mean;
    sum_squares += centered * centered;
  }
  return sum_squares / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  BBV_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  BBV_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

SortedView::SortedView(std::vector<double> values)
    : sorted_(std::move(values)) {
  BBV_CHECK(!sorted_.empty()) << "SortedView over an empty sample";
  std::sort(sorted_.begin(), sorted_.end());
}

double SortedView::Percentile(double q) const {
  BBV_CHECK(q >= 0.0 && q <= 100.0);
  const double position =
      (q / 100.0) * static_cast<double>(sorted_.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = static_cast<size_t>(std::ceil(position));
  if (lower == upper) return sorted_[lower];
  const double weight = position - static_cast<double>(lower);
  return sorted_[lower] * (1.0 - weight) + sorted_[upper] * weight;
}

std::vector<double> SortedView::Percentiles(
    const std::vector<double>& qs) const {
  std::vector<double> result;
  result.reserve(qs.size());
  for (double q : qs) result.push_back(Percentile(q));
  return result;
}

double Percentile(std::vector<double> values, double q) {
  return SortedView(std::move(values)).Percentile(q);
}

std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& qs) {
  return SortedView(std::move(values)).Percentiles(qs);
}

double Median(const std::vector<double>& values) {
  return Percentile(values, 50.0);
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  BBV_CHECK_EQ(a.size(), b.size());
  BBV_CHECK(!a.empty());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace bbv::stats
