#ifndef BBV_STATS_QUANTILE_SKETCH_H_
#define BBV_STATS_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace bbv::stats {

/// Deterministic, mergeable quantile summary for streams over a bounded
/// value domain (class probabilities live in [0, 1]).
///
/// Classic rank-error sketches (GK, KLL, q-digest) compact their state based
/// on the order in which values arrive, so splitting one stream into
/// different mini-batch sequences — or merging shard summaries in a
/// different order — can change which tuples survive compaction and hence
/// the answers, even when every answer stays within the error bound. That is
/// fatal for this repository's determinism gate, which requires *byte
/// identical* outputs across any batch split and any BBV_THREADS setting.
///
/// This sketch therefore canonicalizes the GK idea for a bounded domain: it
/// snaps every value to the nearest point of a fixed dyadic grid over
/// [lo, hi] (2^resolution_bits + 1 points) and counts multiplicities per
/// grid cell. The state is a pure function of the input *multiset* — no RNG,
/// no arrival-order dependence — so Add/Merge commute and associate exactly,
/// and serialization is canonical. Memory is O(2^resolution_bits),
/// independent of stream length.
///
/// Error contract: quantization moves each value by at most CellWidth()/2
/// and is monotone, so every order statistic — and every linearly
/// interpolated percentile — of the sketched stream is within
/// ValueErrorBound() = CellWidth()/2 of the exact value computed by
/// SortedView on the full stream. Within the quantized multiset, quantile
/// queries are rank-exact (zero rank error), so two sketches over the same
/// grid also support exact Kolmogorov-Smirnov distances between their
/// quantized distributions (see KsStatistic).
class QuantileSketch {
 public:
  struct Options {
    /// Grid resolution: 2^resolution_bits cells spanning [lo, hi]. The
    /// default 12 bits keeps a dense sketch at 32 KiB while resolving
    /// probabilities to ~1.2e-4 — far below the noise floor of the
    /// percentile features fed to the performance predictor. Must lie in
    /// [1, 24].
    int resolution_bits = 12;
    /// Inclusive value domain; values outside are clamped on Add. Must
    /// satisfy lo < hi and both finite.
    double lo = 0.0;
    double hi = 1.0;
  };

  QuantileSketch() : QuantileSketch(Options{}) {}
  explicit QuantileSketch(Options options);

  /// Records `weight` occurrences of `value` (clamped to [lo, hi];
  /// non-finite values are rejected with a BBV_CHECK — the serving layer
  /// filters them before they reach the sketch).
  void Add(double value, uint64_t weight = 1);

  /// Adds the other sketch's multiset into this one. The grids must match
  /// exactly (same resolution and domain); merge is commutative and
  /// associative by construction.
  common::Status Merge(const QuantileSketch& other);

  /// q-th percentile (q in [0, 100]) of the sketched multiset with linear
  /// interpolation between order statistics — the same convention as
  /// stats::SortedView / numpy.percentile. Requires a non-empty sketch.
  double Quantile(double q) const;

  /// Percentiles at several points; one cumulative pass over the grid.
  /// `qs` must be sorted ascending.
  std::vector<double> Quantiles(const std::vector<double>& qs) const;

  /// Fraction of sketched mass with (quantized) value <= x. Requires a
  /// non-empty sketch. Together with a shared grid this is the KS-ready
  /// CDF summary: see KsStatistic.
  double Cdf(double x) const;

  /// Total weight added so far.
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Number of grid cells with non-zero weight (the sparse serialized size).
  size_t num_nonzero_cells() const;

  /// Read-only view of the per-grid-point multiplicities (size
  /// 2^resolution_bits + 1). Exposed for CDF-level consumers (KsStatistic)
  /// and canonicality tests.
  const std::vector<uint64_t>& cell_counts() const { return cells_; }

  /// Resident size of the sketch state in bytes (dense cell array).
  size_t MemoryBytes() const;

  /// Width of one grid cell: (hi - lo) / 2^resolution_bits.
  double CellWidth() const;

  /// Maximum distance between any percentile of this sketch and the exact
  /// percentile of the unquantized stream: CellWidth() / 2.
  double ValueErrorBound() const { return CellWidth() / 2.0; }

  const Options& options() const { return options_; }

  /// Canonical serialization: equal multisets produce identical bytes
  /// regardless of Add/Merge order. Sparse (index, weight) pairs.
  common::Status Save(std::ostream& out) const;
  static common::Result<QuantileSketch> Load(std::istream& in);

 private:
  /// Grid index of the nearest grid point for a clamped value.
  size_t CellIndex(double value) const;
  /// Value of grid point `index`.
  double CellValue(size_t index) const;

  Options options_;
  /// Multiplicity per grid point; size 2^resolution_bits + 1.
  std::vector<uint64_t> cells_;
  uint64_t count_ = 0;
};

/// Kolmogorov-Smirnov distance max_x |F_a(x) - F_b(x)| between the quantized
/// distributions of two non-empty sketches on identical grids. Exact for the
/// quantized data; within one cell width of the KS distance of the
/// underlying streams.
common::Result<double> KsStatistic(const QuantileSketch& a,
                                   const QuantileSketch& b);

/// A column-indexed bank of sketches over a probability matrix: sketch k
/// summarizes output column k (class k's predicted probability). This is the
/// streaming counterpart of core::PredictionStatistics — the serving layer
/// feeds mini-batches through Observe and reads the concatenated per-class
/// percentile features on demand, in O(num_columns * 2^resolution_bits)
/// memory instead of O(rows).
class QuantileSketchBank {
 public:
  /// An empty bank with zero columns; the first Observe fixes the width.
  QuantileSketchBank() = default;
  QuantileSketchBank(size_t num_columns, QuantileSketch::Options options);

  /// Adds every entry of `values` to the sketch of its column. Rejects an
  /// empty batch and a column-count mismatch with the bank's width (the
  /// first observed batch fixes the width of a default-constructed bank).
  /// Columns are independent, so the update fans out over the shared thread
  /// pool; results are identical at every BBV_THREADS setting.
  common::Status Observe(const linalg::Matrix& values);

  /// Merges another bank of the same shape and grid into this one.
  common::Status Merge(const QuantileSketchBank& other);

  /// Concatenated per-column percentiles — the sketch-path equivalent of
  /// core::PredictionStatistics. `percentile_points` must be sorted
  /// ascending; requires at least one observed row.
  std::vector<double> PercentileFeatures(
      const std::vector<double>& percentile_points) const;

  size_t num_columns() const { return sketches_.size(); }
  const QuantileSketch& sketch(size_t column) const;
  /// Grid the member sketches live on (also meaningful for a zero-column
  /// bank, where it is the grid future columns will adopt).
  const QuantileSketch::Options& options() const { return options_; }
  /// Rows observed (each row contributes one value per column).
  uint64_t rows_observed() const { return rows_observed_; }
  size_t MemoryBytes() const;
  /// ValueErrorBound of the member sketches; 0 for an empty bank.
  double ValueErrorBound() const;

  /// Canonical bytes (see QuantileSketch::Save).
  common::Status Save(std::ostream& out) const;
  static common::Result<QuantileSketchBank> Load(std::istream& in);

 private:
  QuantileSketch::Options options_;
  std::vector<QuantileSketch> sketches_;
  uint64_t rows_observed_ = 0;
};

}  // namespace bbv::stats

#endif  // BBV_STATS_QUANTILE_SKETCH_H_
