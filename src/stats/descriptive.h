#ifndef BBV_STATS_DESCRIPTIVE_H_
#define BBV_STATS_DESCRIPTIVE_H_

#include <vector>

namespace bbv::stats {

/// Arithmetic mean; requires a non-empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 values.
double Variance(const std::vector<double>& values);

/// Square root of Variance().
double StdDev(const std::vector<double>& values);

/// Smallest / largest element; require non-empty input.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// q-th percentile (q in [0, 100]) with linear interpolation between order
/// statistics, matching numpy.percentile's default. Requires non-empty input.
double Percentile(std::vector<double> values, double q);

/// Percentiles at several points, sharing one sort. Requires non-empty input.
std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& qs);

/// 50th percentile.
double Median(const std::vector<double>& values);

/// Mean of absolute values of (a[i] - b[i]); the evaluation's headline metric.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace bbv::stats

#endif  // BBV_STATS_DESCRIPTIVE_H_
