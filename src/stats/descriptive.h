#ifndef BBV_STATS_DESCRIPTIVE_H_
#define BBV_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace bbv::stats {

/// Arithmetic mean; requires a non-empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator). Requires a non-empty input
/// (consistent with Mean/Min/Max); a single value has variance 0.
double Variance(const std::vector<double>& values);

/// Square root of Variance().
double StdDev(const std::vector<double>& values);

/// Smallest / largest element; require non-empty input.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Sorts a sample once at construction and serves arbitrarily many order
/// statistics afterwards — the single-sort path behind Percentile/
/// Percentiles/Median, and the right tool when several quantile families
/// are needed from the same data (e.g. ModelMonitor::Summary). Requires a
/// non-empty input.
class SortedView {
 public:
  /// Takes ownership of `values` and sorts them ascending.
  explicit SortedView(std::vector<double> values);

  /// q-th percentile (q in [0, 100]) with linear interpolation between
  /// order statistics, matching numpy.percentile's default.
  double Percentile(double q) const;

  /// Percentiles at several points; no re-sorting between queries.
  std::vector<double> Percentiles(const std::vector<double>& qs) const;

  double Median() const { return Percentile(50.0); }
  double Min() const { return sorted_.front(); }
  double Max() const { return sorted_.back(); }
  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// q-th percentile (q in [0, 100]); one-shot convenience over SortedView.
/// Requires non-empty input. Prefer SortedView when querying the same
/// sample more than once.
double Percentile(std::vector<double> values, double q);

/// Percentiles at several points, sharing one sort. Requires non-empty input.
std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& qs);

/// 50th percentile.
double Median(const std::vector<double>& values);

/// Mean of absolute values of (a[i] - b[i]); the evaluation's headline metric.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace bbv::stats

#endif  // BBV_STATS_DESCRIPTIVE_H_
