#ifndef BBV_STATS_SPECIAL_FUNCTIONS_H_
#define BBV_STATS_SPECIAL_FUNCTIONS_H_

namespace bbv::stats {

/// Natural log of the gamma function (Lanczos approximation), x > 0.
double LnGamma(double x);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-squared distribution with `dof` degrees of
/// freedom: P(X >= x).
double ChiSquaredSurvival(double x, double dof);

/// Complementary CDF of the Kolmogorov distribution,
/// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
/// This is the asymptotic p-value of the two-sample KS statistic.
double KolmogorovSurvival(double lambda);

}  // namespace bbv::stats

#endif  // BBV_STATS_SPECIAL_FUNCTIONS_H_
