#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/special_functions.h"

namespace bbv::stats {

namespace {

/// True when every element is finite (no NaN/Inf); used in BBV_DCHECK
/// contracts, so the scan compiles away in NDEBUG builds.
bool AllFinite(const std::vector<double>& values) {
  return std::all_of(values.begin(), values.end(),
                     [](double v) { return std::isfinite(v); });
}

/// Contract for every test result leaving this module: a finite statistic and
/// a p-value that is actually a probability.
TestResult CheckedResult(TestResult result) {
  BBV_DCHECK(std::isfinite(result.statistic))
      << "non-finite test statistic " << result.statistic;
  BBV_DCHECK(result.p_value >= 0.0 && result.p_value <= 1.0)
      << "p-value " << result.p_value << " outside [0, 1]";
  return result;
}

}  // namespace

TestResult TwoSampleKsTest(std::vector<double> a, std::vector<double> b) {
  BBV_CHECK(!a.empty() && !b.empty());
  BBV_DCHECK(AllFinite(a)) << "KS test input a contains NaN/Inf";
  BBV_DCHECK(AllFinite(b)) << "KS test input b contains NaN/Inf";
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  BBV_DCHECK(std::is_sorted(a.begin(), a.end()));
  BBV_DCHECK(std::is_sorted(b.begin(), b.end()));
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t ia = 0;
  size_t ib = 0;
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double va = a[ia];
    const double vb = b[ib];
    const double value = std::min(va, vb);
    while (ia < a.size() && a[ia] <= value) ++ia;
    while (ib < b.size() && b[ib] <= value) ++ib;
    cdf_a = static_cast<double>(ia) / na;
    cdf_b = static_cast<double>(ib) / nb;
    d = std::max(d, std::abs(cdf_a - cdf_b));
  }
  const double effective_n = na * nb / (na + nb);
  // Asymptotic p-value with the standard small-sample correction term.
  const double lambda =
      (std::sqrt(effective_n) + 0.12 + 0.11 / std::sqrt(effective_n)) * d;
  BBV_DCHECK(d >= 0.0 && d <= 1.0) << "KS statistic " << d << " outside [0, 1]";
  return CheckedResult(TestResult{d, KolmogorovSurvival(lambda)});
}

TestResult ChiSquaredHomogeneityTest(const std::vector<double>& counts_a,
                                     const std::vector<double>& counts_b) {
  BBV_CHECK_EQ(counts_a.size(), counts_b.size());
  BBV_CHECK(!counts_a.empty());
  BBV_DCHECK(AllFinite(counts_a)) << "chi-squared counts_a contains NaN/Inf";
  BBV_DCHECK(AllFinite(counts_b)) << "chi-squared counts_b contains NaN/Inf";
  double total_a = 0.0;
  double total_b = 0.0;
  for (size_t k = 0; k < counts_a.size(); ++k) {
    BBV_CHECK_GE(counts_a[k], 0.0);
    BBV_CHECK_GE(counts_b[k], 0.0);
    total_a += counts_a[k];
    total_b += counts_b[k];
  }
  BBV_CHECK(total_a > 0.0 && total_b > 0.0)
      << "chi-squared test needs non-empty samples";
  const double grand_total = total_a + total_b;
  double statistic = 0.0;
  size_t used_categories = 0;
  for (size_t k = 0; k < counts_a.size(); ++k) {
    const double column_total = counts_a[k] + counts_b[k];
    // Both counts are checked non-negative above, so a non-positive sum means
    // the category is absent from both samples.
    if (column_total <= 0.0) continue;
    ++used_categories;
    const double expected_a = total_a * column_total / grand_total;
    const double expected_b = total_b * column_total / grand_total;
    statistic += (counts_a[k] - expected_a) * (counts_a[k] - expected_a) /
                 expected_a;
    statistic += (counts_b[k] - expected_b) * (counts_b[k] - expected_b) /
                 expected_b;
  }
  if (used_categories < 2) {
    // Degenerate table: both samples concentrated in one category.
    return TestResult{0.0, 1.0};
  }
  const double dof = static_cast<double>(used_categories - 1);
  BBV_DCHECK_GE(statistic, 0.0);
  return CheckedResult(TestResult{statistic, ChiSquaredSurvival(statistic, dof)});
}

TestResult ChiSquaredGoodnessOfFit(const std::vector<double>& observed,
                                   const std::vector<double>& expected) {
  BBV_CHECK_EQ(observed.size(), expected.size());
  BBV_CHECK_GE(observed.size(), 2u);
  BBV_DCHECK(AllFinite(observed)) << "goodness-of-fit observed has NaN/Inf";
  BBV_DCHECK(AllFinite(expected)) << "goodness-of-fit expected has NaN/Inf";
  double statistic = 0.0;
  for (size_t k = 0; k < observed.size(); ++k) {
    BBV_CHECK_GT(expected[k], 0.0);
    const double diff = observed[k] - expected[k];
    statistic += diff * diff / expected[k];
  }
  const double dof = static_cast<double>(observed.size() - 1);
  return CheckedResult(TestResult{statistic, ChiSquaredSurvival(statistic, dof)});
}

double BonferroniAlpha(double alpha, size_t num_tests) {
  BBV_CHECK_GT(num_tests, 0u);
  BBV_DCHECK(alpha >= 0.0 && alpha <= 1.0)
      << "significance level " << alpha << " outside [0, 1]";
  return alpha / static_cast<double>(num_tests);
}

}  // namespace bbv::stats
