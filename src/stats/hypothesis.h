#ifndef BBV_STATS_HYPOTHESIS_H_
#define BBV_STATS_HYPOTHESIS_H_

#include <cstddef>
#include <vector>

namespace bbv::stats {

/// Outcome of a hypothesis test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;

  /// Rejects the null hypothesis at level `alpha` (default 0.05, following
  /// the paper's baselines).
  bool Rejects(double alpha = 0.05) const { return p_value < alpha; }
};

/// Two-sample Kolmogorov-Smirnov test: are `a` and `b` drawn from the same
/// continuous distribution? Asymptotic p-value via the Kolmogorov
/// distribution. Both samples must be non-empty.
TestResult TwoSampleKsTest(std::vector<double> a, std::vector<double> b);

/// Chi-squared test of homogeneity on a 2 x K contingency table given as two
/// count vectors over the same K categories (cells with zero totals are
/// dropped). Used for BBSEh (predicted class counts) and for categorical
/// columns in the REL baseline.
TestResult ChiSquaredHomogeneityTest(const std::vector<double>& counts_a,
                                     const std::vector<double>& counts_b);

/// Chi-squared goodness-of-fit of observed counts against expected counts
/// (same length, expected all positive).
TestResult ChiSquaredGoodnessOfFit(const std::vector<double>& observed,
                                   const std::vector<double>& expected);

/// Bonferroni correction: the family-wise significance level for each of
/// `num_tests` tests at overall level `alpha`.
double BonferroniAlpha(double alpha, size_t num_tests);

}  // namespace bbv::stats

#endif  // BBV_STATS_HYPOTHESIS_H_
