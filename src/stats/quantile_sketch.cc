#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "common/telemetry.h"

namespace bbv::stats {

namespace {

constexpr char kSketchMagic[] = "BBVQS";
constexpr uint32_t kSketchVersion = 1;
constexpr char kBankMagic[] = "BBVQB";
constexpr uint32_t kBankVersion = 1;
constexpr int kMaxResolutionBits = 24;

bool GridsMatch(const QuantileSketch::Options& a,
                const QuantileSketch::Options& b) {
  // Exact comparison is intended: merging is only sound when both sketches
  // quantize to the very same grid points.
  return a.resolution_bits == b.resolution_bits && a.lo == b.lo && a.hi == b.hi;
}

}  // namespace

QuantileSketch::QuantileSketch(Options options) : options_(options) {
  BBV_CHECK(options_.resolution_bits >= 1 &&
            options_.resolution_bits <= kMaxResolutionBits)
      << "resolution_bits must lie in [1, " << kMaxResolutionBits << "], got "
      << options_.resolution_bits;
  BBV_CHECK(std::isfinite(options_.lo) && std::isfinite(options_.hi) &&
            options_.lo < options_.hi)
      << "sketch domain must be a finite non-empty interval";
  cells_.assign((size_t{1} << options_.resolution_bits) + 1, 0);
}

size_t QuantileSketch::CellIndex(double value) const {
  const double clamped = std::clamp(value, options_.lo, options_.hi);
  const double unit =
      (clamped - options_.lo) / (options_.hi - options_.lo);
  const double scaled =
      unit * static_cast<double>(size_t{1} << options_.resolution_bits);
  const size_t index = static_cast<size_t>(std::llround(scaled));
  return std::min(index, cells_.size() - 1);
}

double QuantileSketch::CellValue(size_t index) const {
  const double unit =
      static_cast<double>(index) /
      static_cast<double>(size_t{1} << options_.resolution_bits);
  return options_.lo + unit * (options_.hi - options_.lo);
}

void QuantileSketch::Add(double value, uint64_t weight) {
  BBV_CHECK(std::isfinite(value)) << "QuantileSketch::Add of NaN/Inf";
  if (weight == 0) return;
  cells_[CellIndex(value)] += weight;
  count_ += weight;
}

common::Status QuantileSketch::Merge(const QuantileSketch& other) {
  if (!GridsMatch(options_, other.options_)) {
    return common::Status::InvalidArgument(
        "QuantileSketch::Merge requires identical grids (resolution and "
        "domain)");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
  count_ += other.count_;
  return common::Status::OK();
}

double QuantileSketch::Quantile(double q) const {
  return Quantiles({q}).front();
}

std::vector<double> QuantileSketch::Quantiles(
    const std::vector<double>& qs) const {
  BBV_CHECK(count_ > 0) << "Quantile of an empty sketch";
  BBV_CHECK(std::is_sorted(qs.begin(), qs.end()))
      << "percentile points must be ascending";
  // Interpolation positions over the expanded multiset, mirroring
  // stats::SortedView::Percentile: position p = q/100 * (n-1), interpolate
  // between the order statistics at floor(p) and ceil(p).
  struct Query {
    size_t lower_rank = 0;
    size_t upper_rank = 0;
    double weight = 0.0;
    double lower_value = 0.0;
    double upper_value = 0.0;
  };
  std::vector<Query> queries(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    const double q = qs[i];
    BBV_CHECK(q >= 0.0 && q <= 100.0) << "percentile out of [0, 100]: " << q;
    const double position = (q / 100.0) * static_cast<double>(count_ - 1);
    queries[i].lower_rank = static_cast<size_t>(std::floor(position));
    queries[i].upper_rank = static_cast<size_t>(std::ceil(position));
    queries[i].weight =
        position - static_cast<double>(queries[i].lower_rank);
  }
  // One cumulative pass resolves every needed order statistic: rank r lives
  // in the first cell whose inclusive cumulative weight exceeds r.
  size_t next = 0;  // queries with lower_rank not yet resolved
  size_t next_upper = 0;
  uint64_t cumulative = 0;
  for (size_t cell = 0; cell < cells_.size(); ++cell) {
    if (cells_[cell] == 0) continue;
    cumulative += cells_[cell];
    const double value = CellValue(cell);
    while (next < queries.size() && queries[next].lower_rank < cumulative) {
      queries[next].lower_value = value;
      ++next;
    }
    while (next_upper < queries.size() &&
           queries[next_upper].upper_rank < cumulative) {
      queries[next_upper].upper_value = value;
      ++next_upper;
    }
    if (next == queries.size() && next_upper == queries.size()) break;
  }
  BBV_DCHECK(next == queries.size() && next_upper == queries.size());
  std::vector<double> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& query = queries[i];
    if (query.lower_rank == query.upper_rank) {
      out[i] = query.lower_value;
    } else {
      out[i] = query.lower_value * (1.0 - query.weight) +
               query.upper_value * query.weight;
    }
  }
  return out;
}

double QuantileSketch::Cdf(double x) const {
  BBV_CHECK(count_ > 0) << "Cdf of an empty sketch";
  if (x < options_.lo) return 0.0;
  const size_t limit = std::min(CellIndex(x), cells_.size() - 1);
  uint64_t below = 0;
  for (size_t cell = 0; cell <= limit; ++cell) {
    // Mass at grid point `cell` has quantized value CellValue(cell) <= the
    // quantized x, so it counts as <= x in the quantized distribution.
    below += cells_[cell];
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

size_t QuantileSketch::num_nonzero_cells() const {
  return static_cast<size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](uint64_t weight) { return weight > 0; }));
}

size_t QuantileSketch::MemoryBytes() const {
  return sizeof(QuantileSketch) + cells_.capacity() * sizeof(uint64_t);
}

double QuantileSketch::CellWidth() const {
  return (options_.hi - options_.lo) /
         static_cast<double>(size_t{1} << options_.resolution_bits);
}

common::Status QuantileSketch::Save(std::ostream& out) const {
  common::BinaryWriter writer(out);
  writer.WriteMagic(kSketchMagic, kSketchVersion);
  writer.WriteInt32(options_.resolution_bits);
  writer.WriteDouble(options_.lo);
  writer.WriteDouble(options_.hi);
  writer.WriteUint64(count_);
  writer.WriteUint64(num_nonzero_cells());
  for (size_t cell = 0; cell < cells_.size(); ++cell) {
    if (cells_[cell] == 0) continue;
    writer.WriteUint64(cell);
    writer.WriteUint64(cells_[cell]);
  }
  return writer.status();
}

common::Result<QuantileSketch> QuantileSketch::Load(std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kSketchMagic, kSketchVersion));
  BBV_ASSIGN_OR_RETURN(int32_t resolution_bits, reader.ReadInt32());
  if (resolution_bits < 1 || resolution_bits > kMaxResolutionBits) {
    return common::Status::InvalidArgument("corrupt sketch resolution");
  }
  Options options;
  options.resolution_bits = resolution_bits;
  BBV_ASSIGN_OR_RETURN(options.lo, reader.ReadDouble());
  BBV_ASSIGN_OR_RETURN(options.hi, reader.ReadDouble());
  if (!std::isfinite(options.lo) || !std::isfinite(options.hi) ||
      !(options.lo < options.hi)) {
    return common::Status::InvalidArgument("corrupt sketch domain");
  }
  QuantileSketch sketch(options);
  BBV_ASSIGN_OR_RETURN(uint64_t total, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(uint64_t nonzero, reader.ReadUint64());
  if (nonzero > sketch.cells_.size()) {
    return common::Status::InvalidArgument("corrupt sketch cell count");
  }
  uint64_t sum = 0;
  for (uint64_t i = 0; i < nonzero; ++i) {
    BBV_ASSIGN_OR_RETURN(uint64_t cell, reader.ReadUint64());
    BBV_ASSIGN_OR_RETURN(uint64_t weight, reader.ReadUint64());
    if (cell >= sketch.cells_.size() || weight == 0) {
      return common::Status::InvalidArgument("corrupt sketch cell entry");
    }
    sketch.cells_[cell] = weight;
    sum += weight;
  }
  if (sum != total) {
    return common::Status::InvalidArgument(
        "sketch cell weights disagree with the stored total");
  }
  sketch.count_ = total;
  return sketch;
}

common::Result<double> KsStatistic(const QuantileSketch& a,
                                   const QuantileSketch& b) {
  if (!GridsMatch(a.options(), b.options())) {
    return common::Status::InvalidArgument(
        "KsStatistic requires sketches on identical grids");
  }
  if (a.empty() || b.empty()) {
    return common::Status::InvalidArgument(
        "KsStatistic requires non-empty sketches");
  }
  // Both CDFs are step functions jumping only at grid points, so the
  // supremum of |F_a - F_b| is attained at a grid point; one joint
  // cumulative pass over the shared grid.
  double statistic = 0.0;
  uint64_t below_a = 0;
  uint64_t below_b = 0;
  const double total_a = static_cast<double>(a.count());
  const double total_b = static_cast<double>(b.count());
  for (size_t cell = 0; cell < a.cell_counts().size(); ++cell) {
    below_a += a.cell_counts()[cell];
    below_b += b.cell_counts()[cell];
    const double gap = std::abs(static_cast<double>(below_a) / total_a -
                                static_cast<double>(below_b) / total_b);
    statistic = std::max(statistic, gap);
  }
  return statistic;
}

QuantileSketchBank::QuantileSketchBank(size_t num_columns,
                                       QuantileSketch::Options options)
    : options_(options) {
  sketches_.reserve(num_columns);
  for (size_t k = 0; k < num_columns; ++k) {
    sketches_.emplace_back(options_);
  }
}

common::Status QuantileSketchBank::Observe(const linalg::Matrix& values) {
  const common::telemetry::TraceSpan span("sketch_bank.observe");
  if (values.rows() == 0) {
    return common::Status::InvalidArgument(
        "QuantileSketchBank::Observe on an empty batch");
  }
  if (sketches_.empty()) {
    // First batch fixes the width of a default-constructed bank.
    sketches_.reserve(values.cols());
    for (size_t k = 0; k < values.cols(); ++k) {
      sketches_.emplace_back(options_);
    }
  } else if (values.cols() != sketches_.size()) {
    return common::Status::InvalidArgument(
        "batch has " + std::to_string(values.cols()) +
        " columns but the bank tracks " + std::to_string(sketches_.size()));
  }
  // Column sketches are independent: each task touches only its own sketch,
  // so results are bit-identical at every thread count.
  BBV_RETURN_NOT_OK(common::ParallelFor(
      sketches_.size(), [&](size_t k) -> common::Status {
        QuantileSketch& sketch = sketches_[k];
        for (size_t i = 0; i < values.rows(); ++i) {
          sketch.Add(values.At(i, k));
        }
        return common::Status::OK();
      }));
  rows_observed_ += values.rows();
  common::telemetry::IncrementCounter("sketch_bank.rows", values.rows());
  return common::Status::OK();
}

common::Status QuantileSketchBank::Merge(const QuantileSketchBank& other) {
  if (other.sketches_.empty()) return common::Status::OK();
  if (sketches_.empty()) {
    *this = other;
    return common::Status::OK();
  }
  if (sketches_.size() != other.sketches_.size()) {
    return common::Status::InvalidArgument(
        "QuantileSketchBank::Merge across different column counts");
  }
  for (size_t k = 0; k < sketches_.size(); ++k) {
    BBV_RETURN_NOT_OK(sketches_[k].Merge(other.sketches_[k]));
  }
  rows_observed_ += other.rows_observed_;
  return common::Status::OK();
}

std::vector<double> QuantileSketchBank::PercentileFeatures(
    const std::vector<double>& percentile_points) const {
  BBV_CHECK(rows_observed_ > 0)
      << "PercentileFeatures before any observed rows";
  BBV_CHECK(!percentile_points.empty());
  std::vector<double> features;
  features.reserve(sketches_.size() * percentile_points.size());
  for (const QuantileSketch& sketch : sketches_) {
    const std::vector<double> column = sketch.Quantiles(percentile_points);
    features.insert(features.end(), column.begin(), column.end());
  }
  return features;
}

const QuantileSketch& QuantileSketchBank::sketch(size_t column) const {
  BBV_CHECK(column < sketches_.size());
  return sketches_[column];
}

size_t QuantileSketchBank::MemoryBytes() const {
  size_t bytes = sizeof(QuantileSketchBank);
  for (const QuantileSketch& sketch : sketches_) {
    bytes += sketch.MemoryBytes();
  }
  return bytes;
}

double QuantileSketchBank::ValueErrorBound() const {
  return sketches_.empty() ? 0.0 : sketches_.front().ValueErrorBound();
}

common::Status QuantileSketchBank::Save(std::ostream& out) const {
  common::BinaryWriter writer(out);
  writer.WriteMagic(kBankMagic, kBankVersion);
  writer.WriteInt32(options_.resolution_bits);
  writer.WriteDouble(options_.lo);
  writer.WriteDouble(options_.hi);
  writer.WriteUint64(rows_observed_);
  writer.WriteUint64(sketches_.size());
  BBV_RETURN_NOT_OK(writer.status());
  for (const QuantileSketch& sketch : sketches_) {
    BBV_RETURN_NOT_OK(sketch.Save(out));
  }
  return common::Status::OK();
}

common::Result<QuantileSketchBank> QuantileSketchBank::Load(std::istream& in) {
  common::BinaryReader reader(in);
  BBV_RETURN_NOT_OK(reader.ExpectMagic(kBankMagic, kBankVersion));
  BBV_ASSIGN_OR_RETURN(int32_t resolution_bits, reader.ReadInt32());
  if (resolution_bits < 1 || resolution_bits > kMaxResolutionBits) {
    return common::Status::InvalidArgument("corrupt bank resolution");
  }
  QuantileSketch::Options options;
  options.resolution_bits = resolution_bits;
  BBV_ASSIGN_OR_RETURN(options.lo, reader.ReadDouble());
  BBV_ASSIGN_OR_RETURN(options.hi, reader.ReadDouble());
  if (!std::isfinite(options.lo) || !std::isfinite(options.hi) ||
      !(options.lo < options.hi)) {
    return common::Status::InvalidArgument("corrupt bank domain");
  }
  BBV_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadUint64());
  BBV_ASSIGN_OR_RETURN(uint64_t columns, reader.ReadUint64());
  if (columns > (uint64_t{1} << 20)) {
    return common::Status::InvalidArgument("corrupt bank column count");
  }
  if (columns == 0 && rows != 0) {
    return common::Status::InvalidArgument(
        "bank claims observed rows but has no columns");
  }
  QuantileSketchBank bank(static_cast<size_t>(columns), options);
  for (uint64_t k = 0; k < columns; ++k) {
    BBV_ASSIGN_OR_RETURN(bank.sketches_[static_cast<size_t>(k)],
                         QuantileSketch::Load(in));
    if (!GridsMatch(bank.sketches_[static_cast<size_t>(k)].options(),
                    options)) {
      return common::Status::InvalidArgument(
          "bank sketch grid disagrees with the bank header");
    }
    // Every row contributes exactly one value per column, so a sketch whose
    // count disagrees with the header is corrupt state. Without this guard a
    // bank claiming rows > 0 over empty sketches would pass Load and then
    // crash PercentileFeatures (which BBV_CHECKs non-emptiness) — a process
    // abort reachable from untrusted bytes.
    if (bank.sketches_[static_cast<size_t>(k)].count() != rows) {
      return common::Status::InvalidArgument(
          "bank sketch count disagrees with the stored row count");
    }
  }
  bank.rows_observed_ = rows;
  return bank;
}

}  // namespace bbv::stats
