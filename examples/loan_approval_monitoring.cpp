// Scenario from the paper's introduction: an engineering team deploys a
// model for a financial product and must monitor daily serving batches
// without ground-truth labels. A performance *validator* watches the
// model's outputs and raises an alarm whenever the estimated accuracy drop
// exceeds 5% — e.g. after someone ships a preprocessing bug that changes
// the scale of a numeric attribute (seconds -> milliseconds).
//
// Build & run:  ./build/examples/loan_approval_monitoring

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/performance_validator.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"

namespace {

/// One "day" of serving data: a random slice of the serving partition,
/// possibly corrupted by an incident.
struct DailyBatch {
  std::string description;
  bbv::data::DataFrame frame;
  std::vector<int> labels;  // hidden from the validator; used for reporting
};

}  // namespace

int main() {
  bbv::common::Rng rng(2024);

  bbv::data::Dataset dataset = bbv::datasets::MakeBank(20000, rng);
  dataset = bbv::data::BalanceClasses(dataset, rng);
  auto [source, serving] = bbv::data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = bbv::data::TrainTestSplit(source, 0.7, rng);

  bbv::ml::BlackBoxModel model(
      std::make_unique<bbv::ml::GradientBoostedTrees>());
  BBV_CHECK(model.Train(train, rng).ok());
  std::printf("deployed model, test accuracy %.3f\n",
              model.ScoreAccuracy(test).ValueOrDie());

  // Validator with a 5% acceptable accuracy drop, trained on mixtures of
  // the incidents the team has seen before.
  auto incident_mix = std::make_shared<bbv::errors::ErrorMixture>(
      std::vector<std::shared_ptr<bbv::errors::ErrorGen>>{
          std::make_shared<bbv::errors::MissingValues>(),
          std::make_shared<bbv::errors::NumericOutliers>(),
          std::make_shared<bbv::errors::SwappedColumns>(),
          std::make_shared<bbv::errors::Scaling>()});
  const bbv::errors::RandomSubsetCorruption incidents(incident_mix);

  bbv::core::PerformanceValidator::Options options;
  options.threshold = 0.05;
  options.corruptions_per_generator = 200;
  // Daily batches hold ~600 rows; meta-train on 600-row subsets so the
  // validator's features carry the same sampling noise it will see live.
  options.meta_batch_size = 600;
  options.clean_copies = 25;
  bbv::core::PerformanceValidator validator(options);
  std::vector<const bbv::errors::ErrorGen*> generators = {&incidents};
  BBV_CHECK(validator.Train(model, test, generators, rng).ok());

  // Simulated week of serving traffic. Two incidents: a scaling bug on
  // Wednesday and a missing-values bug (broken join) on Friday.
  const bbv::errors::Scaling scaling_bug({"duration"},
                                         bbv::errors::FractionRange{0.8, 1.0});
  const bbv::errors::MissingValues join_bug(
      {"job", "education"}, bbv::errors::FractionRange{0.6, 0.9});

  std::vector<DailyBatch> week;
  const std::vector<std::string> days = {"Mon", "Tue", "Wed", "Thu", "Fri"};
  for (size_t day = 0; day < days.size(); ++day) {
    const std::vector<size_t> rows =
        rng.SampleWithoutReplacement(serving.NumRows(), 600);
    bbv::data::Dataset slice = serving.SelectRows(rows);
    DailyBatch batch;
    batch.labels = slice.labels;
    if (days[day] == "Wed") {
      batch.description = "scaling bug in duration column";
      batch.frame = scaling_bug.Corrupt(slice.features, rng).ValueOrDie();
    } else if (days[day] == "Fri") {
      batch.description = "broken join drops job/education";
      batch.frame = join_bug.Corrupt(slice.features, rng).ValueOrDie();
    } else {
      batch.description = "normal traffic";
      batch.frame = slice.features;
    }
    week.push_back(std::move(batch));
  }

  std::printf("\n%-4s %-35s %-8s %-9s %s\n", "day", "incident", "actual",
              "decision", "correct?");
  for (size_t day = 0; day < week.size(); ++day) {
    const DailyBatch& batch = week[day];
    const auto probabilities = model.PredictProba(batch.frame).ValueOrDie();
    const double actual = bbv::core::ComputeScore(
        bbv::core::ScoreMetric::kAccuracy, probabilities, batch.labels);
    const bool accepted =
        validator.ValidateFromProba(probabilities).ValueOrDie();
    const bool actually_fine =
        actual >= (1.0 - options.threshold) * validator.test_score();
    std::printf("%-4s %-35s %.3f    %-9s %s\n", days[day].c_str(),
                batch.description.c_str(), actual,
                accepted ? "ACCEPT" : "ALARM",
                accepted == actually_fine ? "yes" : "NO");
  }
  std::printf(
      "\nNote how the validator is tied to the *impact* on the model, not to\n"
      "shift detection: Friday's broken join is a real data error, but the\n"
      "gradient-boosted model shrugs it off, so no alarm is the right call.\n");
  return 0;
}
