// Quickstart: validate the predictions of a black box classifier on unseen,
// unlabeled serving data.
//
// The workflow mirrors Figure 1 of the paper:
//   1. Train a black box model on labeled source data.
//   2. Declare the kinds of data errors you expect in production (missing
//      values, outliers, scaling bugs, ...). You only name the *types*;
//      magnitudes are unknown and are sampled automatically.
//   3. Train a performance predictor from synthetically corrupted copies of
//      the held-out test set (Algorithm 1).
//   4. At serving time, estimate the model's accuracy on an unlabeled batch
//      from the distribution of its own outputs (Algorithm 2).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/sgd_logistic_regression.h"

int main() {
  bbv::common::Rng rng(42);

  // 1. Labeled source data and an unseen serving partition. (In production
  //    the serving labels would not exist; we keep them here only to show
  //    how good the estimates are.)
  bbv::data::Dataset dataset = bbv::datasets::MakeIncome(6000, rng);
  dataset = bbv::data::BalanceClasses(dataset, rng);
  auto [source, serving] = bbv::data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = bbv::data::TrainTestSplit(source, 0.7, rng);

  // Train the black box model (any Classifier works; the validation layer
  // only ever sees predicted class probabilities).
  bbv::ml::BlackBoxModel model(
      std::make_unique<bbv::ml::SgdLogisticRegression>());
  if (auto status = model.Train(train, rng); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("black box accuracy on held-out test data: %.3f\n",
              model.ScoreAccuracy(test).ValueOrDie());

  // 2. The error types we anticipate in serving data.
  bbv::errors::MissingValues missing_values;
  bbv::errors::NumericOutliers outliers;
  bbv::errors::Scaling scaling;
  std::vector<const bbv::errors::ErrorGen*> expected_errors = {
      &missing_values, &outliers, &scaling};

  // 3. Learn the performance predictor (Algorithm 1).
  bbv::core::PerformancePredictor predictor;
  if (auto status = predictor.Train(model, test, expected_errors, rng);
      !status.ok()) {
    std::fprintf(stderr, "predictor training failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("performance predictor trained on %zu corrupted copies\n",
              predictor.num_training_examples());

  // 4. Estimate the score on unlabeled serving batches (Algorithm 2). Each
  // estimate carries a conformal interval calibrated on the corrupted
  // copies; the interval covers the true score at the configured coverage
  // level (90% by default).
  const bbv::core::ScoreEstimate clean_estimate =
      predictor.EstimateScore(model, serving.features).ValueOrDie();
  std::printf(
      "\nclean serving batch:     estimated=%.3f in [%.3f, %.3f] "
      "actual=%.3f\n",
      clean_estimate.point, clean_estimate.lo, clean_estimate.hi,
      model.ScoreAccuracy(serving).ValueOrDie());

  // Simulate a preprocessing bug that rescales numeric columns.
  const bbv::data::DataFrame corrupted =
      scaling.Corrupt(serving.features, rng).ValueOrDie();
  const bbv::core::ScoreEstimate corrupted_estimate =
      predictor.EstimateScore(model, corrupted).ValueOrDie();
  const auto corrupted_probabilities =
      model.PredictProba(corrupted).ValueOrDie();
  const double corrupted_actual =
      bbv::core::ComputeScore(bbv::core::ScoreMetric::kAccuracy,
                              corrupted_probabilities, serving.labels);
  std::printf(
      "corrupted serving batch: estimated=%.3f in [%.3f, %.3f] "
      "actual=%.3f\n",
      corrupted_estimate.point, corrupted_estimate.lo, corrupted_estimate.hi,
      corrupted_actual);

  if (corrupted_estimate.point < 0.95 * predictor.test_score()) {
    std::printf("\n=> ALARM: estimated accuracy dropped more than 5%% below "
                "the test-time score (%.3f); do not trust these "
                "predictions.\n",
                predictor.test_score());
  }
  return 0;
}
