// Writing your own error generator. The paper lets engineers encode their
// domain knowledge about what can go wrong with serving data by
// implementing a small corruption operator; here we build a
// "unit change" generator (Fahrenheit temperatures suddenly delivered as
// Celsius — a real bug class in sensor pipelines) and train a performance
// predictor that anticipates it on a synthetic patient-vitals task.
//
// Build & run:  ./build/examples/custom_error_generator

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/error_gen.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"

namespace {

/// Converts a fraction of the values of a numeric column from Fahrenheit to
/// Celsius, as if an upstream service silently changed its unit. Everything
/// a generator needs: copy the frame, sample a magnitude, mutate cells.
class UnitChange : public bbv::errors::ErrorGen {
 public:
  explicit UnitChange(std::string column) : column_(std::move(column)) {}

  bbv::common::Result<bbv::data::DataFrame> Corrupt(
      const bbv::data::DataFrame& frame,
      bbv::common::Rng& rng) const override {
    bbv::data::DataFrame corrupted = frame;
    if (!corrupted.HasColumn(column_)) {
      return bbv::common::Status::NotFound("no column named '" + column_ +
                                           "'");
    }
    bbv::data::Column& column = corrupted.ColumnByName(column_);
    const double fraction = rng.Uniform();  // unknown incident magnitude
    for (size_t row = 0; row < column.size(); ++row) {
      bbv::data::CellValue& cell = column.cell(row);
      if (cell.is_numeric() && rng.Bernoulli(fraction)) {
        cell = bbv::data::CellValue((cell.AsDouble() - 32.0) * 5.0 / 9.0);
      }
    }
    return corrupted;
  }

  std::string Name() const override { return "fahrenheit_to_celsius"; }

 private:
  std::string column_;
};

}  // namespace

int main() {
  bbv::common::Rng rng(5);

  // The heart dataset stands in for a vitals-monitoring task; we treat the
  // systolic blood pressure column as the sensor reading at risk.
  bbv::data::Dataset dataset = bbv::datasets::MakeHeart(6000, rng);
  dataset = bbv::data::BalanceClasses(dataset, rng);
  auto [source, serving] = bbv::data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = bbv::data::TrainTestSplit(source, 0.7, rng);

  bbv::ml::BlackBoxModel model(
      std::make_unique<bbv::ml::GradientBoostedTrees>());
  BBV_CHECK(model.Train(train, rng).ok());
  std::printf("model accuracy on clean test data: %.3f\n",
              model.ScoreAccuracy(test).ValueOrDie());

  const UnitChange unit_change("ap_hi");
  bbv::core::PerformancePredictor predictor;
  std::vector<const bbv::errors::ErrorGen*> generators = {&unit_change};
  BBV_CHECK(predictor.Train(model, test, generators, rng).ok());

  std::printf("\n%-28s %-10s %-10s\n", "incident", "estimated", "actual");
  for (int wave = 0; wave < 5; ++wave) {
    const bbv::data::DataFrame corrupted =
        unit_change.Corrupt(serving.features, rng).ValueOrDie();
    const auto probabilities = model.PredictProba(corrupted).ValueOrDie();
    const double actual = bbv::core::ComputeScore(
        bbv::core::ScoreMetric::kAccuracy, probabilities, serving.labels);
    const double estimated =
        predictor.EstimateScoreFromProba(probabilities).ValueOrDie().point;
    std::printf("unit change wave %-11d %.3f      %.3f\n", wave, estimated,
                actual);
  }
  return 0;
}
