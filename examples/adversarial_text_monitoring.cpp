// Text scenario from the paper's evaluation: a troll-detection classifier
// over tweets is attacked by adversaries who rewrite their tweets in
// "leetspeak" ("hello world" -> "h3110 w041d") to evade the n-gram
// features. The performance predictor estimates how far the classifier's
// accuracy has fallen on each incoming batch, without any labels.
//
// Build & run:  ./build/examples/adversarial_text_monitoring

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/dataset.h"
#include "datasets/text.h"
#include "errors/text_errors.h"
#include "ml/black_box.h"
#include "ml/feed_forward_network.h"

int main() {
  bbv::common::Rng rng(7);

  bbv::data::Dataset tweets = bbv::datasets::MakeTweets(6000, rng);
  tweets = bbv::data::BalanceClasses(tweets, rng);
  auto [source, serving] = bbv::data::TrainTestSplit(tweets, 0.7, rng);
  auto [train, test] = bbv::data::TrainTestSplit(source, 0.7, rng);

  bbv::ml::BlackBoxModel model(
      std::make_unique<bbv::ml::FeedForwardNetwork>());
  BBV_CHECK(model.Train(train, rng).ok());
  std::printf("troll classifier accuracy on clean tweets: %.3f\n",
              model.ScoreAccuracy(test).ValueOrDie());

  // Train the predictor against the anticipated attack.
  bbv::errors::AdversarialLeetspeak attack;
  bbv::core::PerformancePredictor predictor;
  std::vector<const bbv::errors::ErrorGen*> generators = {&attack};
  BBV_CHECK(predictor.Train(model, test, generators, rng).ok());

  // Attack waves of increasing intensity: the fraction of tweets rewritten
  // by the adversaries grows over time.
  std::printf("\n%-22s %-10s %-10s\n", "attack intensity", "estimated",
              "actual");
  for (double intensity : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const bbv::errors::AdversarialLeetspeak wave(
        {}, bbv::errors::FractionRange{intensity, intensity});
    const bbv::data::DataFrame attacked =
        wave.Corrupt(serving.features, rng).ValueOrDie();
    const auto probabilities = model.PredictProba(attacked).ValueOrDie();
    const double actual = bbv::core::ComputeScore(
        bbv::core::ScoreMetric::kAccuracy, probabilities, serving.labels);
    const double estimated =
        predictor.EstimateScoreFromProba(probabilities).ValueOrDie().point;
    std::printf("%3.0f%% tweets rewritten   %.3f      %.3f\n",
                100.0 * intensity, estimated, actual);
  }
  std::printf(
      "\nThe estimates track the true accuracy as the attack intensifies,\n"
      "so a serving system can throttle or reroute traffic when the\n"
      "estimate falls below an acceptable level.\n");
  return 0;
}
