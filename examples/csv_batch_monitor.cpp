// End-to-end operations walkthrough: persist data as CSV, train offline,
// serialize the performance predictor, then "deploy" it in a fresh scope
// that only has the serialized artifact plus incoming CSV batches — the
// workflow a monitoring sidecar would follow in production.
//
// Build & run:  ./build/examples/csv_batch_monitor

#include <cstdio>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/mixture.h"
#include "errors/missing_values.h"
#include "errors/numeric_errors.h"
#include "ml/black_box.h"
#include "ml/gradient_boosted_trees.h"

namespace {

/// The serving-side schema for the income data (what the CSV reader needs).
std::vector<std::pair<std::string, bbv::data::ColumnType>> IncomeSchema(
    const bbv::data::DataFrame& frame) {
  std::vector<std::pair<std::string, bbv::data::ColumnType>> schema;
  for (size_t col = 0; col < frame.NumCols(); ++col) {
    schema.emplace_back(frame.column(col).name(), frame.column(col).type());
  }
  return schema;
}

}  // namespace

int main() {
  bbv::common::Rng rng(123);

  // ----- offline training side ---------------------------------------
  bbv::data::Dataset dataset = bbv::datasets::MakeIncome(5000, rng);
  dataset = bbv::data::BalanceClasses(dataset, rng);
  auto [source, serving] = bbv::data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = bbv::data::TrainTestSplit(source, 0.7, rng);

  bbv::ml::BlackBoxModel model(
      std::make_unique<bbv::ml::GradientBoostedTrees>());
  BBV_CHECK(model.Train(train, rng).ok());

  bbv::errors::MissingValues missing;
  bbv::errors::Scaling scaling;
  bbv::errors::NumericOutliers outliers;
  std::vector<const bbv::errors::ErrorGen*> expected = {&missing, &scaling,
                                                        &outliers};
  bbv::core::PerformancePredictor trained_predictor;
  BBV_CHECK(trained_predictor.Train(model, test, expected, rng).ok());

  // Serialize the predictor as the deployable artifact.
  std::stringstream artifact;
  BBV_CHECK(trained_predictor.Save(artifact).ok());
  std::printf("serialized predictor artifact: %zu bytes "
              "(test-time reference accuracy %.3f)\n",
              artifact.str().size(), trained_predictor.test_score());

  // ----- serving side --------------------------------------------------
  // Reload the artifact as the monitoring sidecar would.
  auto loaded = bbv::core::PerformancePredictor::Load(artifact);
  BBV_CHECK(loaded.ok()) << loaded.status().ToString();
  const bbv::core::PerformancePredictor& predictor = *loaded;

  // Three incoming "batches" arrive as CSV files: a clean one, one hit by a
  // scaling bug, one with heavy missing values.
  const auto schema = IncomeSchema(serving.features);
  struct Batch {
    const char* name;
    bbv::data::DataFrame frame;
  };
  std::vector<Batch> batches;
  batches.push_back({"clean", serving.features});
  batches.push_back(
      {"scaling-bug",
       bbv::errors::Scaling({"capital_gain", "hours_per_week"},
                            bbv::errors::FractionRange{0.9, 1.0})
           .Corrupt(serving.features, rng)
           .ValueOrDie()});
  batches.push_back(
      {"broken-join",
       bbv::errors::MissingValues({"education", "occupation"},
                                  bbv::errors::FractionRange{0.7, 0.9})
           .Corrupt(serving.features, rng)
           .ValueOrDie()});

  std::printf("\n%-14s %-10s %-10s %s\n", "batch", "estimated", "actual",
              "verdict");
  for (const Batch& batch : batches) {
    // Round-trip through CSV like a real file drop.
    std::stringstream csv;
    BBV_CHECK(bbv::data::WriteCsv(batch.frame, csv).ok());
    auto parsed = bbv::data::ReadCsv(csv, schema);
    BBV_CHECK(parsed.ok()) << parsed.status().ToString();

    const auto probabilities = model.PredictProba(*parsed).ValueOrDie();
    const double estimated =
        predictor.EstimateScoreFromProba(probabilities).ValueOrDie().point;
    const double actual = bbv::core::ComputeScore(
        bbv::core::ScoreMetric::kAccuracy, probabilities, serving.labels);
    const bool ok = estimated >= 0.95 * predictor.test_score();
    std::printf("%-14s %.3f      %.3f      %s\n", batch.name, estimated,
                actual, ok ? "accept" : "ALARM");
  }
  return 0;
}
