// The paper's §6.3.2 scenario as a library walkthrough: a team outsources
// model training to a cloud AutoML service (here: automl::CloudModelService,
// which hides the model family and feature map behind a metered batch
// prediction endpoint) and still wants to validate the predictions it gets
// back. Because the approach only consumes predicted class probabilities,
// it works unchanged against the hosted model.
//
// Build & run:  ./build/examples/cloud_automl_validation

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "automl/cloud_service.h"
#include "common/rng.h"
#include "core/performance_predictor.h"
#include "data/dataset.h"
#include "datasets/tabular.h"
#include "errors/missing_values.h"
#include "errors/mixture.h"
#include "errors/numeric_errors.h"
#include "errors/swapped_columns.h"

int main() {
  bbv::common::Rng rng(17);

  bbv::data::Dataset dataset = bbv::datasets::MakeIncome(5000, rng);
  dataset = bbv::data::BalanceClasses(dataset, rng);
  auto [source, serving] = bbv::data::TrainTestSplit(dataset, 0.7, rng);
  auto [train, test] = bbv::data::TrainTestSplit(source, 0.7, rng);

  // "Upload" the training data; the service runs its own model search and
  // returns an opaque hosted model.
  bbv::automl::CloudModelService service;
  auto hosted = service.TrainModel(train, rng);
  BBV_CHECK(hosted.ok()) << hosted.status().ToString();
  const bbv::automl::CloudHostedModel& model = **hosted;
  std::printf("cloud service returned a hosted model ('%s')\n",
              model.Name().c_str());

  // Validate it like any other black box: corrupt held-out data, retrieve
  // predictions from the endpoint, learn the performance predictor.
  const bbv::errors::ErrorMixture mixture(
      std::vector<std::shared_ptr<bbv::errors::ErrorGen>>{
          std::make_shared<bbv::errors::MissingValues>(),
          std::make_shared<bbv::errors::NumericOutliers>(),
          std::make_shared<bbv::errors::SwappedColumns>(),
          std::make_shared<bbv::errors::Scaling>()});
  bbv::core::PerformancePredictor::Options options;
  options.corruptions_per_generator = 200;
  bbv::core::PerformancePredictor predictor(options);
  std::vector<const bbv::errors::ErrorGen*> generators = {&mixture};
  BBV_CHECK(predictor.Train(model, test, generators, rng).ok());
  std::printf("predictor trained; the endpoint served %zu API calls\n",
              model.api_calls());

  // Estimate accuracy on corrupted serving batches and compare with the
  // ground truth (available only in this walkthrough).
  std::printf("\n%-8s %-10s %-10s\n", "batch", "estimated", "actual");
  double total_error = 0.0;
  const int kBatches = 10;
  for (int batch = 0; batch < kBatches; ++batch) {
    const bbv::data::DataFrame corrupted =
        mixture.Corrupt(serving.features, rng).ValueOrDie();
    const auto probabilities = model.PredictProba(corrupted).ValueOrDie();
    const double actual = bbv::core::ComputeScore(
        bbv::core::ScoreMetric::kAccuracy, probabilities, serving.labels);
    const double estimated =
        predictor.EstimateScoreFromProba(probabilities).ValueOrDie().point;
    total_error += std::abs(estimated - actual);
    std::printf("%-8d %.3f      %.3f\n", batch, estimated, actual);
  }
  std::printf("\nmean absolute error over %d corrupted batches: %.4f\n",
              kBatches, total_error / kBatches);
  return 0;
}
